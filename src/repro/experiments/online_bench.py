"""Benchmark of the ``repro.online`` incremental-learning loop.

Three sections, written as ``BENCH_online.json`` at the repo root by
``benchmarks/bench_online_loop.py`` / ``cli online``:

* **recovery** — a simulated distribution shift (every warm rating flips
  across the scale midpoint) streams through the controller as re-rating
  deltas; the loop fine-tunes, gates, and hot-swaps round by round while
  the frozen probe — rebuilt against the *shifted* ground truth — tracks
  how fast the serving model recovers.  Headline:
  ``rmse_recovery_ratio`` (probe RMSE at the shift over the best promoted
  RMSE; higher means the loop clawed more accuracy back) plus
  ``rounds_to_recover``.
* **serve_during_training** — a live :class:`repro.serve.PredictionService`
  replays a workload while a fine-tune round trains and hot-swaps on a
  background thread.  Every response must resolve, and every score must be
  bitwise identical to the sequential reference of *either* the pre-swap
  or the post-swap model — the swap is atomic per request, never blended.
  Also records swap-latency p99 from the ``online.swap_seconds`` histogram.
* **reproducibility** — the same round re-run from the same (checkpoint,
  log offset, seed) at several prefetch worker counts; parameters must be
  bit-identical (max abs diff exactly 0).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import numpy as np

from ..core import HIRE, HIREConfig, HIRETrainer, TrainerConfig
from ..data import make_cold_start_split, movielens_like
from ..eval.tasks import EvalTask, build_eval_tasks
from ..online import (
    FineTuneConfig,
    GateConfig,
    IncrementalTrainer,
    OnlineConfig,
    OnlineController,
    PromotionGate,
    RatingLog,
)
from ..serve import PredictionService, ServiceConfig, replay_workload, synthesize_workload
from ..serve.registry import ModelRegistry
from .serve_bench import _score_sequential

__all__ = [
    "run_online_benchmark",
    "write_online_bench_json",
    "ONLINE_BENCH_FILENAME",
]

ONLINE_BENCH_FILENAME = "BENCH_online.json"


def _setup(smoke: bool):
    if smoke:
        dataset = movielens_like(num_users=50, num_items=40, seed=0,
                                 ratings_per_user=12.0)
        model_cfg = dict(num_blocks=1, num_heads=2, attr_dim=4, seed=0)
        base_steps, tune_steps, max_probe, num_rounds = 4, 3, 4, 2
        num_requests = 10
    else:
        dataset = movielens_like(num_users=120, num_items=90, seed=0,
                                 ratings_per_user=25.0)
        model_cfg = dict(num_blocks=2, num_heads=4, attr_dim=8, seed=0)
        base_steps, tune_steps, max_probe, num_rounds = 40, 12, 8, 4
        num_requests = 32
    split = make_cold_start_split(dataset, 0.2, 0.2, seed=0)
    model = HIRE(dataset, HIREConfig(**model_cfg))
    HIRETrainer(model, split, config=TrainerConfig(
        steps=base_steps, batch_size=4, seed=0)).fit()
    model.eval()
    return dataset, split, model, tune_steps, max_probe, num_rounds, num_requests


def _flip(values: np.ndarray, low: float, high: float) -> np.ndarray:
    """Mirror ratings across the scale midpoint: the simulated shift."""
    return np.clip(low + high - values, low, high)


def _shifted_probe(tasks: list[EvalTask], low: float,
                   high: float) -> list[EvalTask]:
    shifted = []
    for task in tasks:
        support = task.support.copy()
        query = task.query.copy()
        if support.size:
            support[:, 2] = _flip(support[:, 2], low, high)
        query[:, 2] = _flip(query[:, 2], low, high)
        shifted.append(EvalTask(user=task.user, support=support, query=query))
    return shifted


def _run_recovery(split, model, tune_steps: int, max_probe: int,
                  num_rounds: int) -> dict:
    """Stream the shifted warm ratings through the loop, round by round."""
    train = split.train_ratings()
    low, high = float(train[:, 2].min()), float(train[:, 2].max())
    shifted = train.copy()
    shifted[:, 2] = _flip(shifted[:, 2], low, high)

    probe = build_eval_tasks(split, "user", min_query=2, seed=1,
                             max_tasks=max_probe)
    gate = PromotionGate(split, _shifted_probe(probe, low, high),
                         GateConfig(context_users=16, context_items=16,
                                    accept_margin=0.02))
    registry = ModelRegistry(split.dataset)
    registry.add("base", model)
    trainer = IncrementalTrainer(split, config=FineTuneConfig(
        steps=tune_steps, batch_size=4, fresh_boost=4,
        context_users=16, context_items=16))
    controller = OnlineController(
        registry, trainer, gate,
        config=OnlineConfig(min_new_ratings=1, retain_versions=2))

    rmse_at_shift = gate.evaluate(model).rmse
    chunks = np.array_split(shifted, num_rounds)
    rounds = []
    active_series = [rmse_at_shift]
    for chunk in chunks:
        controller.ingest(chunk)
        summary = controller.run_round()
        rounds.append({key: summary[key] for key in summary
                       if key not in ("reason",)})
        stats = controller.stats()
        active_series.append(stats["active_probe_rmse"] or active_series[-1])

    best_rmse = min(active_series)
    recover_round = next(
        (index for index, value in enumerate(active_series[1:])
         if value <= rmse_at_shift * 0.95), None)
    snapshot = controller.metrics.snapshot()
    return {
        "rating_scale": [low, high],
        "num_shift_deltas": len(shifted),
        "num_rounds": len(rounds),
        "probe_tasks": len(probe),
        "rmse_at_shift": rmse_at_shift,
        "active_rmse_series": active_series,
        "best_promoted_rmse": best_rmse,
        "rmse_recovery_ratio": rmse_at_shift / best_rmse,
        "rounds_to_recover": recover_round,
        "promotions": int(snapshot.get("online.promotions_total",
                                       {}).get("value", 0)),
        "rejections": int(snapshot.get("online.rejections_total",
                                       {}).get("value", 0)),
        "rounds_detail": rounds,
    }


def _run_serve_during_training(split, model, tune_steps: int, max_probe: int,
                               num_requests: int) -> dict:
    """Replay a workload while a round trains and hot-swaps concurrently.

    The delta log is pre-filled (the serving graph never changes during the
    replay), so every response has exactly two legal values: the sequential
    reference under the pre-swap model or under the post-swap one.
    """
    tasks = build_eval_tasks(split, "user", min_query=2, seed=2,
                             max_tasks=max_probe)
    workload = synthesize_workload(tasks, num_requests, seed=0)
    probe = build_eval_tasks(split, "user", min_query=2, seed=1,
                             max_tasks=max_probe)
    gate = PromotionGate(split, probe,
                         GateConfig(context_users=16, context_items=16,
                                    accept_margin=1.0))
    registry = ModelRegistry(split.dataset)
    registry.add("base", model)
    trainer = IncrementalTrainer(split, config=FineTuneConfig(
        steps=tune_steps, batch_size=4,
        context_users=16, context_items=16))
    log = RatingLog()
    deltas = split.train_ratings()[:16].copy()
    deltas[:, 2] = np.clip(deltas[:, 2] + 1.0, deltas[:, 2].min(),
                           deltas[:, 2].max())
    log.append(deltas)
    controller = OnlineController(
        registry, trainer, gate, log=log,
        config=OnlineConfig(min_new_ratings=1))

    config = ServiceConfig(queue_size=max(num_requests, 8), max_batch_size=4)
    service = PredictionService.from_split(registry, split, tasks,
                                           config=config)
    try:
        reference_before = _score_sequential(model, split, tasks, workload,
                                             config)
        summary: dict = {}

        def train_and_swap():
            summary.update(controller.run_round(force=True))

        background = threading.Thread(target=train_and_swap)
        start = time.perf_counter()
        background.start()
        scores = replay_workload(service, workload)
        replay_seconds = time.perf_counter() - start
        background.join()

        _, final_model = registry.active()
        reference_after = _score_sequential(final_model, split, tasks,
                                            workload, config)
        served_before = served_after = mismatches = 0
        for got, before, after in zip(scores, reference_before,
                                      reference_after):
            if np.array_equal(got, before):
                served_before += 1
            elif np.array_equal(got, after):
                served_after += 1
            else:
                mismatches += 1
        swap_snapshot = controller.metrics.snapshot().get(
            "online.swap_seconds", {})
    finally:
        service.close()
        controller.close()

    return {
        "num_requests": len(workload),
        "responses_resolved": len(scores),
        "all_futures_resolved": len(scores) == len(workload),
        "round_status": summary.get("status"),
        "served_pre_swap_model": served_before,
        "served_post_swap_model": served_after,
        "bit_identity_mismatches": mismatches,
        "bit_identical": mismatches == 0,
        "replay_seconds": replay_seconds,
        "swap_p99_ms": swap_snapshot.get("p99", 0.0) * 1e3,
        "swap_count": swap_snapshot.get("count", 0),
    }


def _run_reproducibility(split, model, tune_steps: int) -> dict:
    """The same round at several worker counts must be bit-identical."""
    deltas = split.train_ratings()[:12]
    offset = len(deltas)
    results = []
    for workers in (0, 2, 3):
        trainer = IncrementalTrainer(split, config=FineTuneConfig(
            steps=tune_steps, batch_size=4,
            context_users=16, context_items=16,
            prefetch_workers=workers))
        results.append(trainer.fine_tune(model, deltas, offset))
    reference = results[0].model.state_dict()
    max_diff = 0.0
    for result in results[1:]:
        for name, value in result.model.state_dict().items():
            diff = float(np.max(np.abs(value - reference[name]))) if value.size else 0.0
            max_diff = max(max_diff, diff)
    return {
        "worker_counts": [0, 2, 3],
        "round_seeds": [r.round_seed for r in results],
        "same_round_seed": len({r.round_seed for r in results}) == 1,
        "max_param_diff": max_diff,
        "bit_identical": max_diff == 0.0,
    }


def run_online_benchmark(smoke: bool = False) -> dict:
    """Shift recovery, serve-during-training bit-identity, reproducibility."""
    (dataset, split, model, tune_steps, max_probe, num_rounds,
     num_requests) = _setup(smoke)
    recovery = _run_recovery(split, model, tune_steps, max_probe, num_rounds)
    serve_section = _run_serve_during_training(split, model, tune_steps,
                                               max_probe, num_requests)
    repro_section = _run_reproducibility(split, model, tune_steps)
    return {
        "benchmark": "online_loop",
        "smoke": smoke,
        # Methodology marker: tools/check_bench_regression.py refuses to
        # compare payloads whose measurement protocol differs.
        "measurement": {
            "protocol": "online-loop-v1",
            "rounds": num_rounds,
            "tune_steps": tune_steps,
        },
        "config": {
            "num_users": dataset.num_users,
            "num_items": dataset.num_items,
            "probe_tasks": max_probe,
            "tune_steps": tune_steps,
        },
        "recovery": recovery,
        "serve_during_training": serve_section,
        "reproducibility": repro_section,
    }


def write_online_bench_json(payload: dict, repo_root: Path | None = None) -> Path:
    """Write the trajectory file ``BENCH_online.json`` at the repo root."""
    if repo_root is None:
        repo_root = Path(__file__).resolve().parents[3]
    path = repo_root / ONLINE_BENCH_FILENAME
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
