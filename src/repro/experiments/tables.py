"""Text rendering of experiment results in the paper's table layout."""

from __future__ import annotations

import numpy as np

__all__ = [
    "render_overall_table",
    "render_ablation_table",
    "render_timing_table",
    "render_sweep_table",
    "render_attention_matrix",
]

_SCENARIO_LABELS = {"user": "UC", "item": "IC", "both": "U&I C"}


def render_overall_table(rows: list[dict], ks: tuple[int, ...] = (5, 7, 10)) -> str:
    """Tables III-V: scenario blocks × models, metric columns per k."""
    if not rows:
        return "(no results)"
    lines = []
    header = ["Scenario", "Method"]
    for k in ks:
        header += [f"Pre@{k}", f"NDCG@{k}", f"MAP@{k}"]
    lines.append(" | ".join(f"{h:>10s}" for h in header))
    lines.append("-" * len(lines[0]))
    scenarios = _ordered_unique(r["scenario"] for r in rows)
    models = _ordered_unique(r["model"] for r in rows)
    for scenario in scenarios:
        for model in models:
            cells = [f"{_SCENARIO_LABELS.get(scenario, scenario):>10s}", f"{model:>10s}"]
            found = False
            for k in ks:
                match = [r for r in rows
                         if r["scenario"] == scenario and r["model"] == model and r["k"] == k]
                if match:
                    found = True
                    r = match[0]
                    cells += [f"{r['precision']:>10.4f}", f"{r['ndcg']:>10.4f}",
                              f"{r['map']:>10.4f}"]
                else:
                    cells += [f"{'-':>10s}"] * 3
            if found:
                lines.append(" | ".join(cells))
        lines.append("-" * len(lines[0]))
    return "\n".join(lines)


def render_ablation_table(rows: list[dict]) -> str:
    """Table VI: ablation variants × scenarios, metrics @5."""
    if not rows:
        return "(no results)"
    scenarios = _ordered_unique(r["scenario"] for r in rows)
    header = ["Blocks".ljust(24)]
    for scenario in scenarios:
        label = _SCENARIO_LABELS.get(scenario, scenario)
        header += [f"{label} Pre@5", f"{label} NDCG@5", f"{label} MAP@5"]
    lines = [" | ".join(f"{h:>12s}" if i else h for i, h in enumerate(header))]
    lines.append("-" * len(lines[0]))
    for variant in _ordered_unique(r["variant"] for r in rows):
        cells = [variant.ljust(24)]
        for scenario in scenarios:
            match = [r for r in rows
                     if r["variant"] == variant and r["scenario"] == scenario]
            if match:
                r = match[0]
                cells += [f"{r['precision']:>12.4f}", f"{r['ndcg']:>12.4f}",
                          f"{r['map']:>12.4f}"]
            else:
                cells += [f"{'-':>12s}"] * 3
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def render_timing_table(rows: list[dict]) -> str:
    """Fig. 6 as a table: per-dataset total test time per method."""
    if not rows:
        return "(no results)"
    datasets = _ordered_unique(r["dataset"] for r in rows)
    models = _ordered_unique(r["model"] for r in rows)
    header = ["Method".ljust(12)] + [f"{d:>16s}" for d in datasets]
    lines = [" | ".join(header), "-" * (14 + 19 * len(datasets))]
    for model in models:
        cells = [model.ljust(12)]
        for dataset in datasets:
            match = [r for r in rows if r["model"] == model and r["dataset"] == dataset]
            cells.append(f"{match[0]['test_seconds']:>15.3f}s" if match else f"{'-':>16s}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def render_sweep_table(rows: list[dict], sweep_key: str) -> str:
    """Fig. 7 / Fig. 8: one line per swept value × scenario."""
    if not rows:
        return "(no results)"
    header = [sweep_key.ljust(18), "Scenario".ljust(8), "Pre@5".rjust(8),
              "NDCG@5".rjust(8), "MAP@5".rjust(8)]
    lines = [" | ".join(header), "-" * 62]
    for r in rows:
        lines.append(" | ".join([
            str(r[sweep_key]).ljust(18),
            _SCENARIO_LABELS.get(r["scenario"], r["scenario"]).ljust(8),
            f"{r['precision']:8.4f}", f"{r['ndcg']:8.4f}", f"{r['map']:8.4f}",
        ]))
    return "\n".join(lines)


def render_attention_matrix(matrix: np.ndarray, labels: list[str] | None = None,
                            max_width: int = 16) -> str:
    """ASCII heatmap of an attention matrix (Fig. 9 case study)."""
    matrix = np.asarray(matrix)
    shades = " .:-=+*#%@"
    lo, hi = matrix.min(), matrix.max()
    span = (hi - lo) or 1.0
    lines = []
    for i, row in enumerate(matrix[:max_width]):
        cells = "".join(
            shades[min(int((v - lo) / span * (len(shades) - 1)), len(shades) - 1)]
            for v in row[:max_width]
        )
        label = (labels[i][:12].ljust(12) if labels and i < len(labels) else f"{i:>3d}      ")
        lines.append(f"{label} |{cells}|")
    return "\n".join(lines)


def _ordered_unique(values) -> list:
    seen: dict = {}
    for v in values:
        seen.setdefault(v, None)
    return list(seen)
