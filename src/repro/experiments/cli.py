"""Command-line entry point for the reproduction harness.

Examples::

    python -m repro.experiments.cli list
    python -m repro.experiments.cli run table3 --scale fast --max-tasks 6
    python -m repro.experiments.cli run fig9 --scale fast -o results/
    python -m repro.experiments.cli run all --scale fast -o results/
    python -m repro.experiments.cli serve --requests 64 --workers 2
    python -m repro.experiments.cli serve --checkpoint ckpt.npz \
        --workload traffic.jsonl -o results/
    python -m repro.experiments.cli infer --smoke
    python -m repro.experiments.cli pipeline --smoke
    python -m repro.experiments.cli online --smoke --json
    python -m repro.experiments.cli pareto --smoke --json

``run`` prints the paper-style rendering of the chosen artifact and, with
``--output``, writes it to ``<output>/<experiment>.txt``.  ``serve`` stands
up a :class:`repro.serve.PredictionService`, replays a workload through it,
and prints the service's latency/queue/cache report.  ``infer``
microbenchmarks the graph-free inference engine (``repro.nn.inference``)
against the Tensor forward and prints plan-cache/workspace stats.
``pipeline`` sweeps the training-context prefetch grid (``repro.pipeline``)
against the sequential baseline and prints throughput + bit-identity per
grid point.  ``online`` drives the incremental-learning loop
(``repro.online``) through a simulated distribution shift and a
serve-while-training replay, printing recovery and swap stats.  ``pareto``
sweeps the context-budget grid (``repro.experiments.pareto_bench``) and
prints the RMSE-vs-latency frontier the adaptive budget ladder trades
along.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .compare import render_comparison
from .configs import DATASET_SCALES, EXPERIMENTS
from .paper_numbers import _TABLES
from .runner import run_experiment
from .tables import (
    render_ablation_table,
    render_attention_matrix,
    render_overall_table,
    render_sweep_table,
    render_timing_table,
)

__all__ = ["main", "render_experiment"]


def render_experiment(experiment_id: str, result) -> str:
    """Render one experiment's result in the paper's layout."""
    if experiment_id in ("table3", "table4", "table5"):
        return render_overall_table(result, ks=EXPERIMENTS[experiment_id].ks)
    if experiment_id == "fig6":
        return render_timing_table(result)
    if experiment_id == "fig7":
        blocks = [r for r in result if r["sweep"] == "num_him_blocks"]
        contexts = [r for r in result if r["sweep"] == "context_size"]
        return ("HIM blocks sweep\n" + render_sweep_table(blocks, "value")
                + "\n\nContext size sweep\n" + render_sweep_table(contexts, "value"))
    if experiment_id == "table6":
        return render_ablation_table(result)
    if experiment_id == "fig8":
        return render_sweep_table(result, "sampler")
    if experiment_id == "fig9":
        parts = []
        for key, title in (("user", "MBU (between users)"),
                           ("item", "MBI (between items)"),
                           ("attr", "MBA (between attributes)")):
            labels = None
            if key == "attr":
                labels = list(result["attribute_names"])
            parts.append(title)
            parts.append(render_attention_matrix(result["attention"][key], labels))
        return "\n".join(parts)
    raise KeyError(f"unknown experiment {experiment_id!r}")


def _cmd_list(_args) -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for key, spec in EXPERIMENTS.items():
        print(f"{key:<{width}}  {spec.paper_artifact:<10} {spec.description}")
    return 0


def _cmd_run(args) -> int:
    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'list'", file=sys.stderr)
        return 2
    output_dir = Path(args.output) if args.output else None
    if output_dir:
        output_dir.mkdir(parents=True, exist_ok=True)

    for experiment_id in targets:
        kwargs = {}
        if experiment_id != "fig9" and args.max_tasks is not None:
            kwargs["max_tasks"] = args.max_tasks
        start = time.perf_counter()
        result = run_experiment(experiment_id, scale=args.scale, seed=args.seed,
                                **kwargs)
        elapsed = time.perf_counter() - start
        text = render_experiment(experiment_id, result)
        banner = (f"== {EXPERIMENTS[experiment_id].paper_artifact} "
                  f"({experiment_id}, scale={args.scale}, {elapsed:.1f}s) ==")
        print(banner)
        print(text)
        print()
        if output_dir:
            (output_dir / f"{experiment_id}.txt").write_text(text + "\n")
            if getattr(args, "svg", False):
                for name, svg in _render_svgs(experiment_id, result).items():
                    (output_dir / name).write_text(svg + "\n")
    return 0


def _render_svgs(experiment_id: str, result) -> dict[str, str]:
    """SVG charts for the figure experiments (empty for tables)."""
    from ..viz import fig6_svg, fig7_svg, fig8_svg, fig9_svg

    if experiment_id == "fig6":
        return {"fig6.svg": fig6_svg(result)}
    if experiment_id == "fig7":
        return {
            "fig7_blocks.svg": fig7_svg(result, sweep="num_him_blocks"),
            "fig7_context.svg": fig7_svg(result, sweep="context_size"),
        }
    if experiment_id == "fig8":
        return {"fig8.svg": fig8_svg(result)}
    if experiment_id == "fig9":
        return {f"fig9_{which}.svg": fig9_svg(result, which=which)
                for which in ("user", "item", "attr")}
    return {}


def _cmd_compare(args) -> int:
    if args.experiment not in _TABLES:
        print(f"no paper numbers for {args.experiment!r}; "
              f"choose from {sorted(_TABLES)}", file=sys.stderr)
        return 2
    result = run_experiment(args.experiment, scale=args.scale, seed=args.seed,
                            max_tasks=args.max_tasks)
    text = render_comparison(args.experiment, result)
    print(text)
    if args.output:
        out = Path(args.output)
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{args.experiment}_compare.txt").write_text(text + "\n")
    return 0


def _cmd_serve(args) -> int:
    """Stand up a PredictionService, replay a workload, print its report."""
    import numpy as np

    from ..core import HIRE, HIREConfig, HIRETrainer, TrainerConfig
    from ..data import dataset_by_name, make_cold_start_split
    from ..eval.tasks import build_eval_tasks
    from ..serve import (
        ModelRegistry,
        PredictionService,
        RouterConfig,
        ServiceConfig,
        ShardRouter,
        load_workload,
        replay_workload,
        synthesize_update_bursts,
        synthesize_workload,
    )
    from .runner import _SPLIT_FRACTIONS

    sizes = DATASET_SCALES[args.scale]
    dataset = dataset_by_name(
        args.dataset, seed=args.seed,
        num_users=sizes["num_users"], num_items=sizes["num_items"],
        ratings_per_user=sizes["ratings_per_user"][args.dataset],
    )
    fraction = _SPLIT_FRACTIONS[args.dataset]
    split = make_cold_start_split(dataset, fraction, fraction, seed=args.seed)
    tasks = build_eval_tasks(split, "user", min_query=2, seed=args.seed,
                             max_tasks=args.max_tasks)

    registry = ModelRegistry(dataset)
    if args.checkpoint:
        # The checkpoint must come from a model trained on this same
        # dataset profile/scale/seed (the registry rebuilds HIRE from the
        # stored config against the dataset's attribute schema).
        registry.register("checkpoint", args.checkpoint, activate=True)
    else:
        model = HIRE(dataset, HIREConfig(seed=args.seed))
        HIRETrainer(model, split,
                    config=TrainerConfig(steps=args.train_steps,
                                         seed=args.seed)).fit()
        registry.add("freshly-trained", model)

    if args.workload:
        requests = load_workload(args.workload)
    else:
        requests = synthesize_workload(tasks, args.requests, seed=args.seed)
    bursts = (synthesize_update_bursts(split, tasks,
                                       num_bursts=args.update_bursts,
                                       burst_size=args.burst_size,
                                       seed=args.seed)
              if args.update_bursts else [])

    config = ServiceConfig(
        max_batch_size=args.batch_size,
        num_workers=args.workers,
        queue_size=args.queue_size,
        cache_enabled=not args.no_cache,
        seed=args.seed,
    )
    if args.shards > 1:
        service = ShardRouter.from_split(
            registry, split, tasks, config=config,
            router_config=RouterConfig(num_shards=args.shards))
        store = service.store
    else:
        service = PredictionService.from_split(registry, split, tasks,
                                               config=config)
        store = service.graph_store
    segments = np.array_split(np.arange(len(requests)), len(bursts) + 1)
    start = time.perf_counter()
    for index, segment in enumerate(segments):
        replay_workload(service, [requests[i] for i in segment])
        if index < len(bursts):
            service.update_ratings(bursts[index])
    elapsed = time.perf_counter() - start
    service.close()

    updates = store.stats()
    lines = [
        f"== serve replay ({args.dataset}, scale={args.scale}, "
        f"model={registry.active_name}"
        + (f", shards={args.shards}" if args.shards > 1 else "") + ") ==",
        f"{len(requests)} requests in {elapsed:.2f}s "
        f"({len(requests) / elapsed:.1f} req/s)"
        + (f"; updates: {updates['applied_total']} applied / "
           f"{updates['skipped_total']} skipped across {len(bursts)} bursts"
           if bursts else ""),
        "",
        service.report(),
    ]
    text = "\n".join(lines)
    print(text)
    if args.output:
        out = Path(args.output)
        out.mkdir(parents=True, exist_ok=True)
        (out / "serve.txt").write_text(text + "\n")
    return 0


def _cmd_infer(args) -> int:
    """Run the inference-engine microbenchmark; print timings + cache stats."""
    from .infer_bench import run_infer_microbench, write_infer_bench_json

    payload = run_infer_microbench(smoke=args.smoke)
    cfg = payload["config"]
    cache = payload["plan_cache"]
    lines = [
        f"== inference engine ({cfg['n']}x{cfg['m']} context, "
        f"batch {cfg['batch']}, K={cfg['num_blocks']}) ==",
        f"tensor forward : {payload['tensor_forward_seconds'] * 1e3:8.1f} ms"
        f"   batched {payload['tensor_forward_many_seconds'] * 1e3:8.1f} ms",
        f"engine forward : {payload['engine_forward_seconds'] * 1e3:8.1f} ms"
        f"   batched {payload['engine_forward_many_seconds'] * 1e3:8.1f} ms",
        f"speedup        : single {payload['speedup_single']:.2f}x"
        f"   batched {payload['speedup_batched']:.2f}x",
        f"steady-state allocations: {payload['engine_steady_state_bytes']} B",
        f"plan cache     : {cache['plans']} plans  "
        f"{cache['hits']} hits / {cache['misses']} misses  "
        f"{cache['workspace_bytes'] / 1e6:.1f} MB workspace "
        f"(generation {cache['generation']})",
        f"bit-identical to Tensor path: {payload['bit_identical']}",
    ]
    text = "\n".join(lines)
    print(text)
    if args.output:
        out = Path(args.output)
        out.mkdir(parents=True, exist_ok=True)
        (out / "infer_engine.txt").write_text(text + "\n")
    if args.json:
        path = write_infer_bench_json(payload)
        print(f"wrote {path}")
    return 0


def _cmd_pipeline(args) -> int:
    """Sweep the training-context prefetch grid; print the report."""
    from .pipeline_bench import (
        render_pipeline_bench,
        run_pipeline_benchmark,
        write_pipeline_bench_json,
    )

    payload = run_pipeline_benchmark(smoke=args.smoke)
    text = render_pipeline_bench(payload)
    print(text)
    if args.output:
        out = Path(args.output)
        out.mkdir(parents=True, exist_ok=True)
        (out / "pipeline_throughput.txt").write_text(text + "\n")
    if args.json:
        path = write_pipeline_bench_json(payload)
        print(f"wrote {path}")
    if not payload["bit_identical_all_runs"]:
        print("ERROR: a pipelined run diverged from the sequential baseline",
              file=sys.stderr)
        return 1
    return 0


def _cmd_online(args) -> int:
    """Benchmark the incremental-learning loop; print the loop report."""
    from .online_bench import run_online_benchmark, write_online_bench_json

    payload = run_online_benchmark(smoke=args.smoke)
    recovery = payload["recovery"]
    serving = payload["serve_during_training"]
    reproducibility = payload["reproducibility"]
    series = "  ".join(f"{v:.4f}" for v in recovery["active_rmse_series"])
    recover_round = recovery["rounds_to_recover"]
    lines = [
        f"== online loop ({recovery['num_rounds']} rounds, "
        f"{recovery['num_shift_deltas']} shift deltas) ==",
        f"probe RMSE at shift : {recovery['rmse_at_shift']:.4f}",
        f"active RMSE series  : {series}",
        f"recovery ratio      : {recovery['rmse_recovery_ratio']:.3f}x "
        f"(best promoted {recovery['best_promoted_rmse']:.4f})",
        f"recovered by round  : "
        f"{'never' if recover_round is None else recover_round}",
        f"promotions/rejections: {recovery['promotions']}"
        f"/{recovery['rejections']}",
        "",
        f"serve during training: {serving['responses_resolved']}"
        f"/{serving['num_requests']} responses resolved, "
        f"{serving['served_pre_swap_model']} pre-swap + "
        f"{serving['served_post_swap_model']} post-swap, "
        f"bit-identical: {serving['bit_identical']}",
        f"swap latency p99    : {serving['swap_p99_ms']:.2f} ms "
        f"({serving['swap_count']} swap(s))",
        f"round reproducible at workers {reproducibility['worker_counts']}: "
        f"{reproducibility['bit_identical']} "
        f"(max param diff {reproducibility['max_param_diff']:.3g})",
    ]
    text = "\n".join(lines)
    print(text)
    if args.output:
        out = Path(args.output)
        out.mkdir(parents=True, exist_ok=True)
        (out / "online_loop.txt").write_text(text + "\n")
    if args.json:
        path = write_online_bench_json(payload)
        print(f"wrote {path}")
    if not (serving["bit_identical"] and serving["all_futures_resolved"]
            and reproducibility["bit_identical"]):
        print("ERROR: online loop violated bit-identity or lost responses",
              file=sys.stderr)
        return 1
    return 0


def _cmd_pareto(args) -> int:
    """Sweep the context-budget grid; print the RMSE/latency frontier."""
    from .pareto_bench import (
        render_pareto_bench,
        run_pareto_benchmark,
        write_pareto_bench_json,
    )

    payload = run_pareto_benchmark(smoke=args.smoke)
    text = render_pareto_bench(payload)
    print(text)
    if args.output:
        out = Path(args.output)
        out.mkdir(parents=True, exist_ok=True)
        (out / "pareto_frontier.txt").write_text(text + "\n")
    if args.json:
        path = write_pareto_bench_json(payload)
        print(f"wrote {path}")
    if not payload["deterministic"]:
        print("ERROR: a grid point scored differently on a repeat run",
              file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (see 'list') or 'all'")
    run.add_argument("--scale", choices=("fast", "full"), default="fast")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--max-tasks", type=int, default=6,
                     help="evaluation tasks per scenario (None = all)")
    run.add_argument("-o", "--output", default=None,
                     help="directory to write rendered artifacts into")
    run.add_argument("--svg", action="store_true",
                     help="also write SVG charts for figure experiments")
    run.set_defaults(func=_cmd_run)

    compare = sub.add_parser(
        "compare", help="run an overall table and compare against the paper")
    compare.add_argument("experiment", help="table3 | table4 | table5 | table6")
    compare.add_argument("--scale", choices=("fast", "full"), default="fast")
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--max-tasks", type=int, default=6)
    compare.add_argument("-o", "--output", default=None)
    compare.set_defaults(func=_cmd_compare)

    serve = sub.add_parser(
        "serve", help="replay a workload through the online prediction service")
    serve.add_argument("--checkpoint", default=None,
                       help="HIRE checkpoint (.npz) to serve; trains a fresh "
                            "model when omitted")
    serve.add_argument("--workload", default=None,
                       help="JSONL workload to replay (one "
                            '{"user", "items"} per line); synthesized from '
                            "eval tasks when omitted")
    serve.add_argument("--dataset",
                       choices=("movielens", "bookcrossing", "douban"),
                       default="movielens")
    serve.add_argument("--scale", choices=("fast", "full"), default="fast")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--max-tasks", type=int, default=12,
                       help="evaluation tasks the workload is drawn from")
    serve.add_argument("--requests", type=int, default=48,
                       help="synthesized workload size (ignored with --workload)")
    serve.add_argument("--train-steps", type=int, default=30,
                       help="training steps for the fresh model (no --checkpoint)")
    serve.add_argument("--batch-size", type=int, default=8)
    serve.add_argument("--workers", type=int, default=1)
    serve.add_argument("--queue-size", type=int, default=64)
    serve.add_argument("--shards", type=int, default=1,
                       help="route across N service shards (>1 uses the "
                            "ShardRouter; see docs/scaling.md)")
    serve.add_argument("--update-bursts", type=int, default=0,
                       help="apply N rating-update bursts between replay "
                            "segments (exercises the incremental data plane)")
    serve.add_argument("--burst-size", type=int, default=4,
                       help="deltas per update burst")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the assembled-context cache")
    serve.add_argument("-o", "--output", default=None,
                       help="directory to write serve.txt into")
    serve.set_defaults(func=_cmd_serve)

    infer = sub.add_parser(
        "infer",
        help="microbenchmark the graph-free inference engine")
    infer.add_argument("--smoke", action="store_true",
                       help="shrunken config (seconds, not minutes)")
    infer.add_argument("--json", action="store_true",
                       help="also write BENCH_infer.json at the repo root")
    infer.add_argument("-o", "--output", default=None,
                       help="directory to write infer_engine.txt into")
    infer.set_defaults(func=_cmd_infer)

    pipe = sub.add_parser(
        "pipeline",
        help="benchmark the training-context prefetch pipeline grid")
    pipe.add_argument("--smoke", action="store_true",
                      help="shrunken grid (seconds, not minutes)")
    pipe.add_argument("--json", action="store_true",
                      help="also write BENCH_pipeline.json at the repo root")
    pipe.add_argument("-o", "--output", default=None,
                      help="directory to write pipeline_throughput.txt into")
    pipe.set_defaults(func=_cmd_pipeline)

    online = sub.add_parser(
        "online",
        help="benchmark the incremental fine-tuning / promotion loop")
    online.add_argument("--smoke", action="store_true",
                        help="shrunken config (seconds, not minutes)")
    online.add_argument("--json", action="store_true",
                        help="also write BENCH_online.json at the repo root")
    online.add_argument("-o", "--output", default=None,
                        help="directory to write online_loop.txt into")
    online.set_defaults(func=_cmd_online)

    pareto = sub.add_parser(
        "pareto",
        help="map context budgets (n, m) to RMSE vs serving latency")
    pareto.add_argument("--smoke", action="store_true",
                        help="shrunken grid (seconds, not minutes)")
    pareto.add_argument("--json", action="store_true",
                        help="also write BENCH_pareto.json at the repo root")
    pareto.add_argument("-o", "--output", default=None,
                        help="directory to write pareto_frontier.txt into")
    pareto.set_defaults(func=_cmd_pareto)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
