"""Paper-vs-measured comparison for the overall-performance tables.

Renders, for one experiment, the paper's @5 numbers next to measured rows
and evaluates the qualitative *shape* relations the reproduction is judged
on (EXPERIMENTS.md): who wins each scenario, how method families order, and
whether the ablation ordering holds.
"""

from __future__ import annotations

import numpy as np

from .paper_numbers import PAPER_FINDINGS, _TABLES

__all__ = ["compare_overall", "shape_checks", "render_comparison"]

CF_FAMILY = ("NeuMF", "Wide&Deep", "DeepFM", "AFN")
META_FAMILY = ("MAMO", "TaNP", "MeLU")


def _measured_cell(rows: list[dict], scenario: str, model: str, metric: str,
                   k: int = 5) -> float | None:
    values = [r[metric] for r in rows
              if r.get("scenario") == scenario and r.get("model") == model
              and r.get("k") == k]
    return float(np.mean(values)) if values else None


def compare_overall(table: str, rows: list[dict]) -> list[dict]:
    """Per-cell paper-vs-measured records for one overall table (@5)."""
    if table not in _TABLES:
        raise KeyError(f"no paper numbers for {table!r}")
    records = []
    for scenario, models in _TABLES[table].items():
        for model, (p_pre, p_ndcg, p_map) in models.items():
            records.append({
                "scenario": scenario,
                "model": model,
                "paper": {"precision": p_pre, "ndcg": p_ndcg, "map": p_map},
                "measured": {
                    metric: _measured_cell(rows, scenario, model, metric)
                    for metric in ("precision", "ndcg", "map")
                },
            })
    return records


def _family_mean(rows: list[dict], scenario: str, family, metric: str) -> float | None:
    values = [v for m in family
              if (v := _measured_cell(rows, scenario, m, metric)) is not None]
    return float(np.mean(values)) if values else None


def shape_checks(table: str, rows: list[dict], tolerance: float = 0.02) -> dict[str, bool | None]:
    """The qualitative relations the paper's overall tables establish.

    * ``hire_beats_cf_family`` — HIRE's mean NDCG@5 over scenarios is at
      least the CF family's mean (within ``tolerance``).
    * ``hire_top2_each_scenario`` — HIRE ranks in the top 2 of all
      evaluated systems in every scenario (NDCG@5).
    * ``meta_beats_cf_on_cold_items`` — meta-learners' mean ≥ CF family's
      mean on the item/both scenarios (the paper's CF-collapse finding).

    ``None`` means the relation could not be evaluated from ``rows``.
    """
    scenarios = sorted({r["scenario"] for r in rows})
    if not scenarios:
        return {"hire_beats_cf_family": None,
                "hire_top2_each_scenario": None,
                "meta_beats_cf_on_cold_items": None}

    hire = [_measured_cell(rows, s, "HIRE", "ndcg") for s in scenarios]
    cf = [_family_mean(rows, s, CF_FAMILY, "ndcg") for s in scenarios]
    checks: dict[str, bool | None] = {}

    if all(v is not None for v in hire) and all(v is not None for v in cf):
        checks["hire_beats_cf_family"] = bool(
            np.mean(hire) >= np.mean(cf) - tolerance)
    else:
        checks["hire_beats_cf_family"] = None

    top2 = []
    for s in scenarios:
        models = sorted({r["model"] for r in rows if r["scenario"] == s})
        scored = [(m, _measured_cell(rows, s, m, "ndcg")) for m in models]
        scored = [(m, v) for m, v in scored if v is not None]
        if not scored or "HIRE" not in dict(scored):
            top2.append(None)
            continue
        ranked = sorted(scored, key=lambda mv: -mv[1])
        position = [m for m, _ in ranked].index("HIRE")
        hire_v = dict(scored)["HIRE"]
        second_v = ranked[min(1, len(ranked) - 1)][1]
        top2.append(position <= 1 or hire_v >= second_v - tolerance)
    checks["hire_top2_each_scenario"] = (None if any(v is None for v in top2)
                                         else bool(all(top2)))

    cold = [s for s in scenarios if s in ("item", "both")]
    meta = [_family_mean(rows, s, META_FAMILY, "ndcg") for s in cold]
    cf_cold = [_family_mean(rows, s, CF_FAMILY, "ndcg") for s in cold]
    if cold and all(v is not None for v in meta) and all(v is not None for v in cf_cold):
        checks["meta_beats_cf_on_cold_items"] = bool(
            np.mean(meta) >= np.mean(cf_cold) - tolerance)
    else:
        checks["meta_beats_cf_on_cold_items"] = None
    return checks


def render_comparison(table: str, rows: list[dict]) -> str:
    """Text table: paper vs measured NDCG@5 / Precision@5 per cell."""
    records = compare_overall(table, rows)
    lines = [f"{'scenario':>8s} | {'model':<12s} | "
             f"{'paper N@5':>9s} {'ours N@5':>9s} | "
             f"{'paper P@5':>9s} {'ours P@5':>9s}"]
    lines.append("-" * len(lines[0]))
    for rec in records:
        def fmt(v):
            return f"{v:9.4f}" if v is not None else f"{'—':>9s}"
        lines.append(
            f"{rec['scenario']:>8s} | {rec['model']:<12s} | "
            f"{fmt(rec['paper']['ndcg'])} {fmt(rec['measured']['ndcg'])} | "
            f"{fmt(rec['paper']['precision'])} {fmt(rec['measured']['precision'])}"
        )
    checks = shape_checks(table, rows)
    lines.append("")
    lines.append(f"paper finding: {PAPER_FINDINGS.get(table, '(n/a)')}")
    for name, verdict in checks.items():
        symbol = {True: "PASS", False: "MISS", None: "n/a "}[verdict]
        lines.append(f"  [{symbol}] {name}")
    return "\n".join(lines)
