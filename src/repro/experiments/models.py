"""Model registry: every evaluated system behind one factory interface.

:class:`HIREModel` adapts the core HIRE pipeline (trainer + predictor) to
the :class:`~repro.baselines.base.RatingModel` contract the evaluation
protocol expects, so HIRE and the ten baselines are scored identically.

:func:`create_model` builds any system by name with a *speed preset*:
``"fast"`` keeps CI and pytest-benchmark runs short, ``"full"`` trains
longer for report-quality numbers.  Both presets use the same
architectures — only step counts change.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines import (
    AFN,
    MAMO,
    DeepFM,
    GraphHINGE,
    GraphRec,
    MeLU,
    MetaHIN,
    NeuMF,
    RatingModel,
    TaNP,
    WideDeep,
)
from ..core import (
    HIRE,
    HIREConfig,
    HIREPredictor,
    HIRETrainer,
    TrainerConfig,
    sampler_by_name,
)
from ..data.schema import RatingDataset
from ..data.splits import ColdStartSplit
from ..eval.tasks import EvalTask

__all__ = ["HIREModel", "MODEL_NAMES", "create_model", "models_for_dataset"]


@dataclass
class _Preset:
    hire_steps: int
    pairwise_steps: int
    episodes: int
    graph_steps: int
    context_size: int
    hire_blocks: int
    hire_heads: int
    hire_attr_dim: int


# The "fast" preset trades the paper's exact capacity (3 blocks × 8 heads ×
# f=16, context 32) for a compact configuration that trains to a better
# optimum in CPU-benchmark time; "full" restores the paper's §VI-A setting.
_PRESETS = {
    "fast": _Preset(hire_steps=400, pairwise_steps=300, episodes=150,
                    graph_steps=60, context_size=16,
                    hire_blocks=2, hire_heads=4, hire_attr_dim=8),
    "full": _Preset(hire_steps=1500, pairwise_steps=2000, episodes=800,
                    graph_steps=400, context_size=32,
                    hire_blocks=3, hire_heads=8, hire_attr_dim=16),
}


class HIREModel(RatingModel):
    """HIRE behind the shared fit/predict_task interface."""

    name = "HIRE"

    def __init__(self, dataset: RatingDataset, config: HIREConfig | None = None,
                 trainer_config: TrainerConfig | None = None,
                 sampler: str = "neighborhood", seed: int = 0,
                 predict_reveal_fraction: float = 0.2,
                 num_context_samples: int = 3):
        self.dataset = dataset
        self.config = config or HIREConfig(seed=seed)
        self.trainer_config = trainer_config or TrainerConfig(seed=seed)
        self.sampler_name = sampler
        self.seed = seed
        # Trained with randomized reveal fractions, the model handles dense
        # test contexts; half-revealed test contexts expose the known warm
        # ratings without straying far from the training distribution.
        self.predict_reveal_fraction = predict_reveal_fraction
        self.num_context_samples = num_context_samples
        self.model: HIRE | None = None
        self.predictor: HIREPredictor | None = None

    def fit(self, split: ColdStartSplit, tasks: list[EvalTask]) -> None:
        sampler = sampler_by_name(self.sampler_name, self.dataset)
        self.model = HIRE(self.dataset, self.config)
        trainer = HIRETrainer(self.model, split, sampler=sampler,
                              config=self.trainer_config)
        trainer.fit()
        self.predictor = HIREPredictor(
            self.model, split, tasks, sampler=sampler,
            context_users=self.trainer_config.context_users,
            context_items=self.trainer_config.context_items,
            reveal_fraction=self.predict_reveal_fraction,
            num_context_samples=self.num_context_samples,
            seed=self.seed,
        )

    def predict_task(self, task: EvalTask) -> np.ndarray:
        if self.predictor is None:
            raise RuntimeError("HIRE: fit() must run before predict_task()")
        return self.predictor.predict_task(task)


MODEL_NAMES = (
    "HIRE", "NeuMF", "Wide&Deep", "DeepFM", "AFN",
    "GraphRec", "GraphHINGE", "MetaHIN", "MAMO", "TaNP", "MeLU",
)


def create_model(name: str, dataset: RatingDataset, seed: int = 0,
                 preset: str = "fast", **overrides) -> RatingModel:
    """Instantiate a system by its paper name."""
    if preset not in _PRESETS:
        raise KeyError(f"unknown preset {preset!r}; choose from {sorted(_PRESETS)}")
    p = _PRESETS[preset]
    key = name.lower()
    if key == "hire":
        config = overrides.pop("config", None) or HIREConfig(
            num_blocks=p.hire_blocks, num_heads=p.hire_heads,
            attr_dim=p.hire_attr_dim, seed=seed,
        )
        trainer_config = overrides.pop("trainer_config", None) or TrainerConfig(
            steps=p.hire_steps, context_users=p.context_size,
            context_items=p.context_size, base_lr=5e-3,
            reveal_fraction=0.1, reveal_fraction_high=0.3, seed=seed,
        )
        sampler = overrides.pop("sampler", "neighborhood")
        return HIREModel(dataset, config=config, trainer_config=trainer_config,
                         sampler=sampler, seed=seed, **overrides)
    if key == "neumf":
        return NeuMF(dataset, steps=p.pairwise_steps, seed=seed, **overrides)
    if key in ("wide&deep", "widedeep", "wide_deep"):
        return WideDeep(dataset, steps=p.pairwise_steps, seed=seed, **overrides)
    if key == "deepfm":
        return DeepFM(dataset, steps=p.pairwise_steps, seed=seed, **overrides)
    if key == "afn":
        return AFN(dataset, steps=p.pairwise_steps, seed=seed, **overrides)
    if key == "graphrec":
        return GraphRec(dataset, steps=p.graph_steps, seed=seed, **overrides)
    if key == "graphhinge":
        return GraphHINGE(dataset, steps=p.graph_steps, seed=seed, **overrides)
    if key == "igmc":
        from ..baselines import IGMC
        return IGMC(dataset, steps=p.graph_steps, seed=seed, **overrides)
    if key == "metahin":
        return MetaHIN(dataset, episodes=p.episodes, seed=seed, **overrides)
    if key == "mamo":
        return MAMO(dataset, episodes=p.episodes, seed=seed, **overrides)
    if key == "tanp":
        return TaNP(dataset, episodes=p.episodes, seed=seed, **overrides)
    if key == "melu":
        return MeLU(dataset, episodes=p.episodes, seed=seed, **overrides)
    raise KeyError(f"unknown model {name!r}; choose from {MODEL_NAMES}")


def models_for_dataset(dataset: RatingDataset) -> tuple[str, ...]:
    """The systems the paper evaluates on a given dataset profile.

    GraphRec needs a social graph (Douban only); GraphHINGE and MetaHIN need
    rich attributes for an HIN (MovieLens only) — §VI-A.
    """
    base = ["NeuMF", "Wide&Deep", "DeepFM", "AFN"]
    if dataset.social_edges is not None:
        base.append("GraphRec")
    if dataset.num_user_attributes >= 3 and dataset.num_item_attributes >= 3:
        base.extend(["GraphHINGE", "MetaHIN"])
    base.extend(["MAMO", "TaNP", "MeLU", "HIRE"])
    return tuple(base)
