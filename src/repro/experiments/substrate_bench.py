"""Microbenchmark of the ``repro.nn`` substrate's fused/float32 fast path.

Times :meth:`HIRETrainer.train_step` and :meth:`HIRE.forward` at the paper
config (n = m = 32 contexts, K = 3 HIM blocks, 8 heads × 16 dims) in two
substrate modes:

* **baseline** — decomposed reference kernels in float64: the substrate as
  originally shipped (many small autograd nodes, three separate QKV
  matmuls, float64 everywhere).
* **fused** — single-node fused kernels (layer_norm / gelu / linear /
  packed-QKV attention) under the float32 dtype policy.

``benchmarks/bench_substrate_micro.py`` writes the result as
``BENCH_substrate.json`` at the repo root so the speedup trajectory is
tracked across PRs; the ``--smoke`` mode (and the tier-1 smoke test) runs a
shrunken config in a couple of seconds without touching the JSON.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from .. import nn, obs
from ..core import HIRE, HIREConfig, HIRETrainer, TrainerConfig
from ..data import make_cold_start_split, movielens_like

__all__ = [
    "run_substrate_microbench",
    "run_observability_overhead",
    "run_zero_grad_delta",
    "write_bench_json",
    "BENCH_FILENAME",
]

BENCH_FILENAME = "BENCH_substrate.json"


def _paper_setup(smoke: bool):
    if smoke:
        dataset = movielens_like(num_users=60, num_items=50, seed=0,
                                 ratings_per_user=15.0)
        model_cfg = dict(num_blocks=1, num_heads=2, attr_dim=4, seed=0)
        train_cfg = dict(steps=64, batch_size=1, context_users=8,
                         context_items=8, seed=0)
    else:
        dataset = movielens_like(num_users=200, num_items=150, seed=0,
                                 ratings_per_user=30.0)
        model_cfg = dict(num_blocks=3, num_heads=8, attr_dim=16, seed=0)
        train_cfg = dict(steps=256, batch_size=4, context_users=32,
                         context_items=32, seed=0)
    split = make_cold_start_split(dataset, 0.2, 0.2, seed=0)
    return dataset, split, model_cfg, train_cfg


def _time_mode(dataset, split, model_cfg: dict, train_cfg: dict,
               dtype, fused: bool, steps: int, forward_repeats: int) -> dict:
    with nn.dtype_policy(dtype), nn.functional.fused_kernels(fused):
        model = HIRE(dataset, HIREConfig(**model_cfg))
        trainer = HIRETrainer(model, split, config=TrainerConfig(**train_cfg))
        trainer.train_step()  # warm-up (first-touch allocations, BLAS init)
        start = time.perf_counter()
        for _ in range(steps):
            trainer.train_step()
        train_seconds = time.perf_counter() - start

        context = trainer.sample_training_context()
        model.predict(context)  # warm-up
        forward_best = float("inf")
        for _ in range(forward_repeats):
            tick = time.perf_counter()
            model.predict(context)
            forward_best = min(forward_best, time.perf_counter() - tick)
    return {
        "dtype": np.dtype(dtype).name,
        "fused_kernels": fused,
        "train_steps_timed": steps,
        "train_step_seconds": train_seconds / steps,
        "train_steps_per_second": steps / train_seconds,
        "forward_seconds": forward_best,
    }


def run_substrate_microbench(smoke: bool = False, steps: int | None = None,
                             forward_repeats: int = 5) -> dict:
    """Run baseline (float64, unfused) vs. fused (float32) and return stats."""
    dataset, split, model_cfg, train_cfg = _paper_setup(smoke)
    if steps is None:
        steps = 2 if smoke else 20
    baseline = _time_mode(dataset, split, model_cfg, train_cfg,
                          np.float64, fused=False, steps=steps,
                          forward_repeats=forward_repeats)
    fused = _time_mode(dataset, split, model_cfg, train_cfg,
                       np.float32, fused=True, steps=steps,
                       forward_repeats=forward_repeats)
    return {
        "benchmark": "substrate_micro",
        "smoke": smoke,
        "config": {
            "context_users": train_cfg["context_users"],
            "context_items": train_cfg["context_items"],
            "batch_size": train_cfg["batch_size"],
            "num_blocks": model_cfg["num_blocks"],
            "num_heads": model_cfg["num_heads"],
            "attr_dim": model_cfg["attr_dim"],
        },
        "baseline_float64_unfused": baseline,
        "fused_float32": fused,
        "speedup_train_step": baseline["train_step_seconds"] / fused["train_step_seconds"],
        "speedup_forward": baseline["forward_seconds"] / fused["forward_seconds"],
    }


def _time_fit(dataset, split, model_cfg: dict, train_cfg: dict,
              observers=None) -> dict:
    """Wall-time one full ``fit`` (fresh model/trainer) and return stats."""
    model = HIRE(dataset, HIREConfig(**model_cfg))
    trainer = HIRETrainer(model, split, config=TrainerConfig(**train_cfg),
                          observers=observers)
    trainer.train_step()  # warm-up (first-touch allocations, BLAS init)
    steps = train_cfg["steps"]
    start = time.perf_counter()
    trainer.fit()
    seconds = time.perf_counter() - start
    return {
        "fit_seconds": seconds,
        "train_step_seconds": seconds / steps,
        "loss_history": [float(v) for v in trainer.loss_history],
    }


def run_observability_overhead(smoke: bool = False,
                               steps: int | None = None) -> dict:
    """Instrumented-vs-uninstrumented ``train_step`` overhead (PR 2 gate).

    Times the same seeded ``fit`` twice on the fused float32 path:

    * **disabled** — no observers, profiling off, op hooks off: the
      telemetry code is present but every switch is cold (the ≤ 1 %
      acceptance configuration).
    * **enabled** — every sink at once: JSONL recorder, metrics registry,
      console sink (to ``os.devnull``), profiling spans, *and* per-op
      hooks (the ≤ 5 % configuration, measured without op hooks as well).

    Both runs share the seed, so the identical ``loss_history`` doubles as
    the passivity check; the result records ``trajectories_identical``.
    """
    dataset, split, model_cfg, train_cfg = _paper_setup(smoke)
    train_cfg = dict(train_cfg, steps=steps or (8 if smoke else 40))

    with nn.dtype_policy(np.float32), nn.functional.fused_kernels(True):
        disabled = _time_fit(dataset, split, model_cfg, train_cfg)

        with tempfile.TemporaryDirectory() as tmp, \
                open(os.devnull, "w", encoding="utf-8") as devnull:
            recorder = obs.RunRecorder(Path(tmp) / "bench_run.jsonl",
                                       config=train_cfg)
            observers = [
                obs.RecorderSink(recorder),
                obs.MetricsSink(obs.MetricsRegistry()),
                obs.ConsoleSink(log_every=10, stream=devnull),
            ]
            with obs.profiling(True):
                sinks_only = _time_fit(dataset, split, model_cfg, train_cfg,
                                       observers=observers)
            recorder.close()

            recorder = obs.RunRecorder(Path(tmp) / "bench_run_ophooks.jsonl",
                                       config=train_cfg)
            observers = [
                obs.RecorderSink(recorder),
                obs.MetricsSink(obs.MetricsRegistry()),
                obs.ConsoleSink(log_every=10, stream=devnull),
            ]
            with obs.profiling(True), obs.ophooks.op_hooks():
                enabled = _time_fit(dataset, split, model_cfg, train_cfg,
                                    observers=observers)
            recorder.close()

    identical = (disabled["loss_history"] == sinks_only["loss_history"]
                 == enabled["loss_history"])
    payload = {
        "steps_timed": train_cfg["steps"],
        "trajectories_identical": identical,
    }
    for name, run in (("disabled", disabled), ("sinks_and_spans", sinks_only),
                      ("sinks_spans_and_ophooks", enabled)):
        payload[name] = {"fit_seconds": run["fit_seconds"],
                         "train_step_seconds": run["train_step_seconds"]}
    payload["overhead_sinks_and_spans"] = (
        sinks_only["train_step_seconds"] / disabled["train_step_seconds"] - 1.0)
    payload["overhead_sinks_spans_and_ophooks"] = (
        enabled["train_step_seconds"] / disabled["train_step_seconds"] - 1.0)
    return payload


def run_zero_grad_delta(smoke: bool = False, steps: int | None = None) -> dict:
    """``zero_grad(set_to_zero=True)`` vs. the default drop-to-None mode.

    Times the same seeded fused-float32 ``fit`` in both modes; the shared
    seed makes the identical ``loss_history`` double as the bit-identity
    check (zeroing buffers in place may not change a single update).
    """
    dataset, split, model_cfg, train_cfg = _paper_setup(smoke)
    train_cfg = dict(train_cfg, steps=steps or (8 if smoke else 40))

    with nn.dtype_policy(np.float32), nn.functional.fused_kernels(True):
        dropped = _time_fit(dataset, split, model_cfg, train_cfg)
        in_place = _time_fit(dataset, split, model_cfg,
                             dict(train_cfg, zero_grads_in_place=True))
    return {
        "steps_timed": train_cfg["steps"],
        "dropped": {"fit_seconds": dropped["fit_seconds"],
                    "train_step_seconds": dropped["train_step_seconds"]},
        "in_place": {"fit_seconds": in_place["fit_seconds"],
                     "train_step_seconds": in_place["train_step_seconds"]},
        "train_step_delta": (in_place["train_step_seconds"]
                             / dropped["train_step_seconds"] - 1.0),
        "loss_history_identical": (dropped["loss_history"]
                                   == in_place["loss_history"]),
    }


def write_bench_json(payload: dict, repo_root: Path | None = None) -> Path:
    """Write the trajectory file ``BENCH_substrate.json`` at the repo root."""
    if repo_root is None:
        repo_root = Path(__file__).resolve().parents[3]
    path = repo_root / BENCH_FILENAME
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
