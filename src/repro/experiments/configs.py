"""Experiment registry: one entry per paper table/figure (DESIGN.md §4).

Each :class:`ExperimentSpec` records the workload (dataset profile and
scale), the systems compared, the scenarios and metrics — enough for
:mod:`repro.experiments.runner` to regenerate the artifact.  Scales are
parameterised: the ``fast`` scale keeps pytest-benchmark runs in seconds,
``full`` approaches the paper's setting as closely as CPU allows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentSpec", "EXPERIMENTS", "DATASET_SCALES"]

# Dataset sizes per run scale.  The paper's datasets are 10-100× larger;
# profiles keep the Table II attribute schemas.  Per-user rating counts are
# raised above the real datasets' sparsity so that per-user top-k lists at
# this scale are long enough to discriminate models (documented in
# EXPERIMENTS.md).
DATASET_SCALES = {
    "fast": {
        "num_users": 150,
        "num_items": 100,
        "ratings_per_user": {"movielens": 40.0, "douban": 30.0, "bookcrossing": 25.0},
    },
    "full": {
        "num_users": 400,
        "num_items": 300,
        "ratings_per_user": {"movielens": 60.0, "douban": 45.0, "bookcrossing": 35.0},
    },
}


@dataclass(frozen=True)
class ExperimentSpec:
    """What one paper artifact needs to be regenerated."""

    experiment_id: str
    paper_artifact: str
    description: str
    dataset: str                      # profile name for repro.data.dataset_by_name
    scenarios: tuple[str, ...] = ("user", "item", "both")
    ks: tuple[int, ...] = (5, 7, 10)
    models: tuple[str, ...] = ()      # empty -> models_for_dataset(...)
    repeats: int = 1
    extra: dict = field(default_factory=dict)


EXPERIMENTS: dict[str, ExperimentSpec] = {
    "table3": ExperimentSpec(
        experiment_id="table3",
        paper_artifact="Table III",
        description="Overall performance, three cold-start scenarios, MovieLens-1M",
        dataset="movielens",
    ),
    "table4": ExperimentSpec(
        experiment_id="table4",
        paper_artifact="Table IV",
        description="Overall performance, three cold-start scenarios, Bookcrossing",
        dataset="bookcrossing",
    ),
    "table5": ExperimentSpec(
        experiment_id="table5",
        paper_artifact="Table V",
        description="Overall performance, three cold-start scenarios, Douban",
        dataset="douban",
    ),
    "fig6": ExperimentSpec(
        experiment_id="fig6",
        paper_artifact="Fig. 6",
        description="Total test time per method (user cold-start)",
        dataset="movielens",
        scenarios=("user",),
        ks=(5,),
    ),
    "fig7": ExperimentSpec(
        experiment_id="fig7",
        paper_artifact="Fig. 7",
        description="Sensitivity: number of HIM blocks and context size",
        dataset="movielens",
        ks=(5,),
        models=("HIRE",),
        extra={"num_blocks": (1, 2, 3, 4), "context_sizes": (16, 32, 48, 64)},
    ),
    "table6": ExperimentSpec(
        experiment_id="table6",
        paper_artifact="Table VI",
        description="Ablation of the three attention layers on MovieLens-1M",
        dataset="movielens",
        ks=(5,),
        models=("HIRE",),
        extra={
            "variants": {
                "wo/ Item & Attribute": {"use_item": False, "use_attr": False},
                "wo/ User & Attribute": {"use_user": False, "use_attr": False},
                "wo/ User & Item": {"use_user": False, "use_item": False},
                "wo/ User": {"use_user": False},
                "wo/ Item": {"use_item": False},
                "wo/ Attribute": {"use_attr": False},
                "full model": {},
            }
        },
    ),
    "fig8": ExperimentSpec(
        experiment_id="fig8",
        paper_artifact="Fig. 8",
        description="Impact of context sampling strategies on MovieLens-1M",
        dataset="movielens",
        ks=(5,),
        models=("HIRE",),
        extra={"samplers": ("neighborhood", "random", "feature")},
    ),
    "fig9": ExperimentSpec(
        experiment_id="fig9",
        paper_artifact="Fig. 9",
        description="Case study: learned attention matrices (MBU / MBI / MBA)",
        dataset="movielens",
        scenarios=("user",),
        ks=(5,),
        models=("HIRE",),
    ),
}
