"""Pareto frontier of context budgets: accuracy vs serving latency.

The adaptive budget ladder (``docs/adaptive_context.md``) trades context
size ``(n, m)`` for latency under load; this benchmark measures what that
dial actually buys.  A briefly trained HIRE scores every evaluation task
at each grid budget, timing **assembly** (neighbourhood sampling +
context construction, the part the vectorized sampler accelerates) and
**forward** (the model pass) separately, and recording the RMSE against
the tasks' held-out query ratings.  Scores at a given ``(n, m)`` are a
pure function of ``(seed, user, sample, chunk)`` —
:func:`repro.core.task_chunk_rng` — so each grid point's RMSE is exactly
the RMSE a service degraded to that rung would show.

Timings interleave across the grid with min-of-repeats (machine-speed
drift lands on every budget equally); the headline
``latency_dynamic_range`` — slowest budget over fastest budget — is a
within-run ratio, so it survives baseline machines of different speeds
and is gated by ``tools/check_bench_regression.py``.

``benchmarks/bench_pareto_frontier.py`` writes the result as
``BENCH_pareto.json`` at the repo root; ``repro-experiments pareto``
prints the frontier table.  ``--smoke`` shrinks the grid to seconds.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from ..core import HIRE, HIREConfig, HIRETrainer, TrainerConfig
from ..core.predictor import assemble_user_chunks, build_serving_graph, task_chunk_rng
from ..core.sampling import NeighborhoodSampler
from ..data import make_cold_start_split, movielens_like
from ..eval.tasks import build_eval_tasks

__all__ = [
    "run_pareto_benchmark",
    "render_pareto_bench",
    "write_pareto_bench_json",
    "PARETO_BENCH_FILENAME",
]

PARETO_BENCH_FILENAME = "BENCH_pareto.json"


def _setup(smoke: bool):
    if smoke:
        dataset = movielens_like(num_users=60, num_items=50, seed=0,
                                 ratings_per_user=15.0)
        model_cfg = dict(num_blocks=1, num_heads=2, attr_dim=4, seed=0)
        max_tasks, train_steps = 6, 10
        grid = ((8, 8), (16, 16))
    else:
        dataset = movielens_like(num_users=150, num_items=100, seed=0,
                                 ratings_per_user=30.0)
        model_cfg = dict(num_blocks=2, num_heads=4, attr_dim=8, seed=0)
        max_tasks, train_steps = 12, 60
        grid = ((8, 8), (12, 12), (16, 16), (24, 24), (32, 32))
    split = make_cold_start_split(dataset, 0.2, 0.2, seed=0)
    tasks = build_eval_tasks(split, "user", min_query=2, seed=0,
                             max_tasks=max_tasks)
    model = HIRE(dataset, HIREConfig(**model_cfg))
    HIRETrainer(model, split,
                config=TrainerConfig(steps=train_steps, seed=0)).fit()
    return dataset, split, tasks, model, grid


def _score_grid_point(model, graph, sampler, tasks, candidate_users,
                      candidate_items, n: int, m: int, seed: int = 0,
                      reveal_fraction: float = 0.1):
    """Score every task at budget ``(n, m)``; returns per-phase seconds.

    Assembly and forward are timed separately so the frontier shows
    which phase the budget dial moves — assembly shrinks with both axes,
    the forward with the ``n × m`` cell count.
    """
    assemble_seconds = forward_seconds = 0.0
    errors = []
    for task in tasks:
        def rng_factory(start, _user=task.user):
            return task_chunk_rng(seed, _user, 0, start)

        start_t = time.perf_counter()
        chunks = assemble_user_chunks(
            graph, sampler, task.user, task.query_items, task.support_items,
            context_users=n, context_items=m,
            reveal_fraction=reveal_fraction,
            candidate_users=candidate_users,
            candidate_items=candidate_items,
            rng_factory=rng_factory)
        assemble_seconds += time.perf_counter() - start_t

        scores = np.empty(len(task.query_items), dtype=np.float64)
        start_t = time.perf_counter()
        for chunk in chunks:
            predicted = model.predict(chunk.context)
            scores[chunk.start:chunk.start + len(chunk)] = (
                predicted[chunk.user_row, chunk.cols])
        forward_seconds += time.perf_counter() - start_t
        errors.append(scores - task.query_ratings)
    residual = np.concatenate(errors)
    rmse = float(np.sqrt(np.mean(residual ** 2)))
    return rmse, assemble_seconds, forward_seconds


def run_pareto_benchmark(smoke: bool = False) -> dict:
    """RMSE vs assembly+forward latency across the context-budget grid."""
    dataset, split, tasks, model, grid = _setup(smoke)
    graph, candidate_users, candidate_items = build_serving_graph(split, tasks)
    sampler = NeighborhoodSampler()
    repeats = 1 if smoke else 3

    # Warm-up (CSR build, BLAS init, plan caches) + determinism pin: the
    # same grid point scored twice must yield the exact same RMSE, or the
    # frontier would not transfer to a serving ladder rung.
    n0, m0 = grid[0]
    first = _score_grid_point(model, graph, sampler, tasks, candidate_users,
                              candidate_items, n0, m0)
    again = _score_grid_point(model, graph, sampler, tasks, candidate_users,
                              candidate_items, n0, m0)
    deterministic = first[0] == again[0]

    best: dict[tuple[int, int], tuple] = {}
    for _ in range(repeats):
        for n, m in grid:
            rmse, assemble_seconds, forward_seconds = _score_grid_point(
                model, graph, sampler, tasks, candidate_users,
                candidate_items, n, m)
            total = assemble_seconds + forward_seconds
            held = best.get((n, m))
            if held is None or total < held[3]:
                best[(n, m)] = (rmse, assemble_seconds, forward_seconds, total)

    num_queries = sum(len(task.query_items) for task in tasks)
    points = []
    for n, m in grid:
        rmse, assemble_seconds, forward_seconds, total = best[(n, m)]
        points.append({
            "context_users": n,
            "context_items": m,
            "rmse": rmse,
            "assemble_seconds": assemble_seconds,
            "forward_seconds": forward_seconds,
            "total_seconds": total,
            "latency_per_task_ms": total / len(tasks) * 1e3,
        })

    totals = [p["total_seconds"] for p in points]
    rmses = [p["rmse"] for p in points]
    return {
        "benchmark": "pareto_frontier",
        "smoke": smoke,
        "measurement": {
            "protocol": "interleaved-min-of-repeats",
            "repeats": repeats,
        },
        "config": {
            "num_tasks": len(tasks),
            "num_queries": num_queries,
            "num_users": dataset.num_users,
            "num_items": dataset.num_items,
            "grid": [list(point) for point in grid],
        },
        "points": points,
        "deterministic": deterministic,
        # Ratio headlines (machine-normalized): how much latency the
        # budget dial can shed end to end, and what that costs in RMSE
        # (rmse_cost_ratio = RMSE at the cheapest budget over RMSE at the
        # richest — recorded, not gated: on tiny synthetic data small
        # contexts occasionally win).
        "latency_dynamic_range": max(totals) / min(totals),
        "rmse_cost_ratio": rmses[0] / rmses[-1],
        "rmse_best": min(rmses),
        "rmse_worst": max(rmses),
    }


def render_pareto_bench(payload: dict) -> str:
    cfg = payload["config"]
    lines = [
        f"== context-budget pareto frontier ({cfg['num_tasks']} tasks, "
        f"{cfg['num_queries']} queries, {cfg['num_users']}x"
        f"{cfg['num_items']} graph) ==",
        f"{'budget':>8} {'rmse':>8} {'assemble':>10} {'forward':>10} "
        f"{'total':>10} {'ms/task':>9}",
    ]
    for point in payload["points"]:
        budget = f"{point['context_users']}x{point['context_items']}"
        lines.append(
            f"{budget:>8} {point['rmse']:8.4f} "
            f"{point['assemble_seconds'] * 1e3:8.1f}ms "
            f"{point['forward_seconds'] * 1e3:8.1f}ms "
            f"{point['total_seconds'] * 1e3:8.1f}ms "
            f"{point['latency_per_task_ms']:9.1f}")
    lines.append(
        f"latency dynamic range: {payload['latency_dynamic_range']:.2f}x  "
        f"rmse cost ratio: {payload['rmse_cost_ratio']:.3f}  "
        f"deterministic: {payload['deterministic']}")
    return "\n".join(lines)


def write_pareto_bench_json(payload: dict, repo_root: Path | None = None
                            ) -> Path:
    """Write the trajectory file ``BENCH_pareto.json`` at the repo root."""
    if repo_root is None:
        repo_root = Path(__file__).resolve().parents[3]
    path = repo_root / PARETO_BENCH_FILENAME
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
