"""Experiment runner: regenerates every paper table and figure.

Each ``run_*`` function returns plain data structures (lists of row dicts or
arrays) that :mod:`repro.experiments.tables` renders as paper-style text
tables; the ``benchmarks/`` suite calls the same functions under
pytest-benchmark.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..core import HIRE, HIREConfig, HIRETrainer, TrainerConfig, build_context
from ..core.sampling import NeighborhoodSampler
from ..data import dataset_by_name, make_cold_start_split
from ..data.bipartite import RatingGraph
from ..eval import build_eval_tasks, evaluate_model, measure_test_time
from .configs import DATASET_SCALES, EXPERIMENTS, ExperimentSpec
from .models import HIREModel, create_model, models_for_dataset

__all__ = [
    "prepare_workload",
    "run_overall_performance",
    "run_test_time",
    "run_sensitivity",
    "run_ablation",
    "run_sampling_ablation",
    "run_case_study",
    "run_experiment",
]

_SPLIT_FRACTIONS = {"movielens": 0.2, "bookcrossing": 0.3, "douban": 0.3}


def _workload(profile: str, scale: str, seed: int):
    sizes = DATASET_SCALES[scale]
    dataset = dataset_by_name(
        profile, seed=seed,
        num_users=sizes["num_users"], num_items=sizes["num_items"],
        ratings_per_user=sizes["ratings_per_user"][profile],
    )
    fraction = _SPLIT_FRACTIONS[profile]
    split = make_cold_start_split(dataset, fraction, fraction, seed=seed)
    return dataset, split


def prepare_workload(spec: ExperimentSpec, scale: str = "fast", seed: int = 0):
    """Dataset + split for one experiment at a given scale."""
    return _workload(spec.dataset, scale, seed)


def _min_query(scenario: str, ks: tuple[int, ...]) -> int:
    """Per-user list length floor: near the largest k for the two single-
    cold scenarios, relaxed for the sparser both-cold quadrant."""
    return 5 if scenario == "both" else max(ks[-1] - 2, 5)


def run_overall_performance(spec: ExperimentSpec, scale: str = "fast",
                            max_tasks: int | None = 10, seed: int = 0,
                            models: tuple[str, ...] | None = None) -> list[dict]:
    """Tables III-V: every model × scenario × k × metric."""
    dataset, split = prepare_workload(spec, scale, seed)
    model_names = models or spec.models or models_for_dataset(dataset)
    preset = "fast" if scale == "fast" else "full"
    rows: list[dict] = []
    for scenario in spec.scenarios:
        tasks = build_eval_tasks(split, scenario, min_query=_min_query(scenario, spec.ks),
                                 seed=seed, max_tasks=max_tasks)
        if not tasks:
            continue
        for name in model_names:
            model = create_model(name, dataset, seed=seed, preset=preset)
            with obs.span(f"runner/{spec.experiment_id}/{scenario}/{name}"):
                result = evaluate_model(model, split, scenario, ks=spec.ks,
                                        tasks=tasks)
            for k in spec.ks:
                rows.append({
                    "experiment": spec.experiment_id,
                    "dataset": dataset.name,
                    "scenario": scenario,
                    "model": name,
                    "k": k,
                    **result.metrics[k],
                    "fit_seconds": result.fit_seconds,
                    "predict_seconds": result.predict_seconds,
                    "num_tasks": result.num_tasks,
                })
    return rows


def run_test_time(scale: str = "fast", max_tasks: int | None = 8,
                  seed: int = 0, datasets: tuple[str, ...] = ("movielens", "douban", "bookcrossing"),
                  models: tuple[str, ...] | None = None) -> list[dict]:
    """Fig. 6: total prediction time per method (user cold-start)."""
    preset = "fast" if scale == "fast" else "full"
    rows: list[dict] = []
    for profile in datasets:
        dataset, split = _workload(profile, scale, seed)
        tasks = build_eval_tasks(split, "user", min_query=5, seed=seed, max_tasks=max_tasks)
        if not tasks:
            continue
        names = models or models_for_dataset(dataset)
        for name in names:
            model = create_model(name, dataset, seed=seed, preset=preset)
            with obs.span(f"runner/fig6/{profile}/{name}"):
                with obs.span("fit"):
                    model.fit(split, tasks)
                seconds = measure_test_time(model, tasks)
            rows.append({"dataset": profile, "model": name,
                         "test_seconds": float(seconds),
                         "test_seconds_mean": seconds.mean,
                         "test_seconds_p50": seconds.p50,
                         "num_tasks": len(tasks)})
    return rows


def _sweep_settings(scale: str, seed: int, blocks: int | None = None,
                    context: int | None = None,
                    flags: dict | None = None) -> tuple[HIREConfig, TrainerConfig]:
    """HIRE config/trainer used by the fig7/table6/fig8 sweeps.

    The sweeps train one model per (variant, scenario) cell, so the fast
    scale uses a cheaper budget than the headline tables; relative ordering
    between variants is what these artifacts report.
    """
    if scale == "fast":
        config = HIREConfig(num_blocks=blocks or 2, num_heads=4, attr_dim=8,
                            seed=seed, **(flags or {}))
        trainer = TrainerConfig(steps=200, batch_size=4, base_lr=5e-3,
                                context_users=context or 12,
                                context_items=context or 12,
                                reveal_fraction=0.1, reveal_fraction_high=0.3,
                                seed=seed)
    else:
        config = HIREConfig(num_blocks=blocks or 3, seed=seed, **(flags or {}))
        trainer = TrainerConfig(steps=600, batch_size=4, base_lr=3e-3,
                                context_users=context or 32,
                                context_items=context or 32,
                                reveal_fraction=0.1, reveal_fraction_high=0.3,
                                seed=seed)
    return config, trainer


def run_sensitivity(scale: str = "fast", max_tasks: int | None = 8, seed: int = 0,
                    num_blocks: tuple[int, ...] = (1, 2, 3, 4),
                    context_sizes: tuple[int, ...] = (16, 32, 48, 64),
                    scenarios: tuple[str, ...] = ("user", "item", "both")) -> list[dict]:
    """Fig. 7: metrics@5 as K (HIM blocks) and context size vary."""
    spec = EXPERIMENTS["fig7"]
    dataset, split = prepare_workload(spec, scale, seed)
    rows: list[dict] = []

    def eval_hire(config: HIREConfig, trainer_config: TrainerConfig,
                  sweep: str, value) -> None:
        for scenario in scenarios:
            tasks = build_eval_tasks(split, scenario, min_query=5, seed=seed,
                                     max_tasks=max_tasks)
            if not tasks:
                continue
            model = HIREModel(dataset, config=config, trainer_config=trainer_config,
                              seed=seed)
            with obs.span(f"runner/fig7/{sweep}={value}/{scenario}"):
                result = evaluate_model(model, split, scenario, ks=(5,), tasks=tasks)
            rows.append({"sweep": sweep, "value": value, "scenario": scenario,
                         **result.metrics[5]})

    for blocks in num_blocks:
        config, trainer_config = _sweep_settings(scale, seed, blocks=blocks)
        eval_hire(config, trainer_config, "num_him_blocks", blocks)
    for context in context_sizes:
        # Scale down the context sweep on the fast preset, preserving order.
        effective = context if scale == "full" else max(context // 4, 4)
        config, trainer_config = _sweep_settings(scale, seed, context=effective)
        eval_hire(config, trainer_config, "context_size", context)
    return rows


def run_ablation(scale: str = "fast", max_tasks: int | None = 8, seed: int = 0,
                 scenarios: tuple[str, ...] = ("user", "item", "both")) -> list[dict]:
    """Table VI: removing attention layers from every HIM block."""
    spec = EXPERIMENTS["table6"]
    dataset, split = prepare_workload(spec, scale, seed)
    rows: list[dict] = []
    for variant, flags in spec.extra["variants"].items():
        config, trainer_config = _sweep_settings(scale, seed, flags=flags)
        for scenario in scenarios:
            tasks = build_eval_tasks(split, scenario, min_query=5, seed=seed,
                                     max_tasks=max_tasks)
            if not tasks:
                continue
            model = HIREModel(dataset, config=config, trainer_config=trainer_config,
                              seed=seed)
            with obs.span(f"runner/table6/{variant}/{scenario}"):
                result = evaluate_model(model, split, scenario, ks=(5,), tasks=tasks)
            rows.append({"variant": variant, "scenario": scenario,
                         **result.metrics[5]})
    return rows


def run_sampling_ablation(scale: str = "fast", max_tasks: int | None = 8,
                          seed: int = 0,
                          samplers: tuple[str, ...] = ("neighborhood", "random", "feature"),
                          scenarios: tuple[str, ...] = ("user", "item", "both")) -> list[dict]:
    """Fig. 8: neighbourhood vs random vs feature-similarity sampling."""
    spec = EXPERIMENTS["fig8"]
    dataset, split = prepare_workload(spec, scale, seed)
    rows: list[dict] = []
    for sampler in samplers:
        config, trainer_config = _sweep_settings(scale, seed)
        for scenario in scenarios:
            tasks = build_eval_tasks(split, scenario, min_query=5, seed=seed,
                                     max_tasks=max_tasks)
            if not tasks:
                continue
            model = HIREModel(dataset, config=config,
                              trainer_config=trainer_config, sampler=sampler, seed=seed)
            with obs.span(f"runner/fig8/{sampler}/{scenario}"):
                result = evaluate_model(model, split, scenario, ks=(5,), tasks=tasks)
            rows.append({"sampler": sampler, "scenario": scenario,
                         **result.metrics[5]})
    return rows


def run_case_study(scale: str = "fast", seed: int = 0,
                   context_size: int | None = None) -> dict:
    """Fig. 9: train HIRE, capture MBU/MBI/MBA attention on one context.

    Returns the three attention matrices (head-averaged, from the last HIM),
    the context entities, and predictions vs ground truth on the masked
    cells — everything the paper's heatmaps and narrative use.
    """
    spec = EXPERIMENTS["fig9"]
    dataset, split = prepare_workload(spec, scale, seed)
    context_size = context_size or (12 if scale == "fast" else 16)
    config, trainer_config = _sweep_settings(scale, seed, context=context_size)

    model = HIRE(dataset, config)
    trainer = HIRETrainer(model, split, config=trainer_config)
    with obs.span("runner/fig9/fit"):
        trainer.fit()

    rng = np.random.default_rng(seed)
    graph = RatingGraph(split.train_ratings(), dataset.num_users, dataset.num_items)
    sampler = NeighborhoodSampler()
    seed_row = split.train_ratings()[rng.integers(len(split.train_ratings()))]
    users, items = sampler.sample(
        graph, np.array([int(seed_row[0])]), np.array([int(seed_row[1])]),
        context_size, context_size, rng, split.train_users, split.train_items,
    )
    context = build_context(graph, users, items, rng, reveal_fraction=0.1)

    model.capture_attention(True)
    with obs.span("runner/fig9/predict"):
        predictions = model.predict(context)
    model.capture_attention(False)
    captured = model.captured_attention()[-1]  # last HIM block

    # Head-averaged matrices; MBU/MBI pick the column/row of the seed entities.
    attention = {}
    if "user" in captured:
        # (m, heads, n, n) -> pick the seed item's column, average heads.
        seed_col = int(np.flatnonzero(items == int(seed_row[1]))[0])
        attention["user"] = captured["user"][seed_col].mean(axis=0)
    if "item" in captured:
        seed_rowidx = int(np.flatnonzero(users == int(seed_row[0]))[0])
        attention["item"] = captured["item"][seed_rowidx].mean(axis=0)
    if "attr" in captured:
        seed_rowidx = int(np.flatnonzero(users == int(seed_row[0]))[0])
        seed_col = int(np.flatnonzero(items == int(seed_row[1]))[0])
        attention["attr"] = captured["attr"][seed_rowidx, seed_col].mean(axis=0)

    query_cells = np.argwhere(context.query)
    return {
        "users": users,
        "items": items,
        "attention": attention,
        "attribute_names": (tuple(dataset.user_attribute_names)
                            + tuple(dataset.item_attribute_names) + ("rating",)),
        "predictions": predictions,
        "ground_truth": context.ratings,
        "query_cells": query_cells,
    }


def run_experiment(experiment_id: str, scale: str = "fast", **kwargs):
    """Dispatch an experiment by registry id."""
    spec = EXPERIMENTS[experiment_id]
    if experiment_id in ("table3", "table4", "table5"):
        return run_overall_performance(spec, scale=scale, **kwargs)
    if experiment_id == "fig6":
        return run_test_time(scale=scale, **kwargs)
    if experiment_id == "fig7":
        return run_sensitivity(scale=scale, **kwargs)
    if experiment_id == "table6":
        return run_ablation(scale=scale, **kwargs)
    if experiment_id == "fig8":
        return run_sampling_ablation(scale=scale, **kwargs)
    if experiment_id == "fig9":
        return run_case_study(scale=scale, **kwargs)
    raise KeyError(f"unknown experiment {experiment_id!r}")
