"""Throughput benchmark of the ``repro.pipeline`` training-context pipeline.

Trains the same model over a grid of prefetch configurations
(workers × buffer depth × backend) and compares step throughput against a
**sequential baseline**: the identical trainer with
``per_step_rng=True, prefetch_workers=0``, i.e. the same derived-RNG
sampling executed inline.  Every grid point must reproduce the baseline's
``loss_history`` **bit-identically** — the speedup is never bought with a
numerics change (same contract as the serving benchmark).

A legacy run (the shared advancing RNG stream, today's default) is timed
for reference; its losses follow a different — equally valid — random
trajectory, so it is excluded from the bit-identity check.

Overlap needs hardware to run on: on a single-core host the pipeline can
only break even (the JSON records ``parallel_hardware: false`` and the
benchmark asserts overhead-neutrality instead of speedup).

``benchmarks/bench_pipeline_throughput.py`` writes the result as
``BENCH_pipeline.json`` at the repo root; ``--smoke`` runs a shrunken grid
in seconds and skips the JSON write.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from .. import obs
from ..core import HIRE, HIREConfig, HIRETrainer, TrainerConfig
from ..data import make_cold_start_split, movielens_like

__all__ = [
    "run_pipeline_benchmark",
    "write_pipeline_bench_json",
    "PIPELINE_BENCH_FILENAME",
]

PIPELINE_BENCH_FILENAME = "BENCH_pipeline.json"


def _setup(smoke: bool):
    """Dataset/model/trainer shapes.

    The full profile is deliberately sampling-heavy (dense rating graph,
    small context, light model): that is the regime the pipeline exists
    for — see ``docs/training_pipeline.md`` for the span numbers.
    """
    if smoke:
        dataset = movielens_like(num_users=60, num_items=50, seed=0,
                                 ratings_per_user=15.0)
        model_cfg = dict(num_blocks=1, num_heads=2, attr_dim=4, seed=0)
        trainer_cfg = dict(steps=6, batch_size=2, context_users=8,
                           context_items=8, seed=0)
        grid = [("thread", 1, 2), ("thread", 2, 4)]
    else:
        dataset = movielens_like(num_users=600, num_items=400, seed=0,
                                 ratings_per_user=120.0)
        model_cfg = dict(num_blocks=1, num_heads=2, attr_dim=4, seed=0)
        trainer_cfg = dict(steps=30, batch_size=8, context_users=12,
                           context_items=12, seed=0)
        grid = [
            ("thread", 1, 2), ("thread", 1, 8),
            ("thread", 2, 2), ("thread", 2, 8),
            ("thread", 4, 8),
            ("process", 2, 8), ("process", 4, 8),
        ]
    split = make_cold_start_split(dataset, 0.2, 0.2, seed=0)
    return dataset, split, model_cfg, trainer_cfg, grid


def _fit_once(dataset, split, model_cfg: dict, trainer_cfg: dict,
              **overrides) -> tuple[list[float], float, HIRETrainer]:
    """Fresh model + trainer (same seeds every call), one timed fit."""
    model = HIRE(dataset, HIREConfig(**model_cfg))
    config = TrainerConfig(**{**trainer_cfg, **overrides})
    trainer = HIRETrainer(model, split, config=config)
    start = time.perf_counter()
    history = trainer.fit()
    seconds = time.perf_counter() - start
    return list(history), seconds, trainer


def _sample_fraction(dataset, split, model_cfg, trainer_cfg) -> float:
    """Share of ``train_step`` wall-clock spent in the ``sample`` span,
    measured on a short profiled sequential run (not timed)."""
    model = HIRE(dataset, HIREConfig(**model_cfg))
    config = TrainerConfig(**{**trainer_cfg,
                              "steps": max(trainer_cfg["steps"] // 3, 2),
                              "per_step_rng": True})
    trainer = HIRETrainer(model, split, config=config)
    obs.reset_spans()
    with obs.profiling():
        trainer.fit()
    totals = obs.span_totals()
    obs.reset_spans()
    step = totals.get("train_step")
    sample = totals.get("train_step/sample")
    if step is None or sample is None or step.total_seconds <= 0:
        return 0.0
    return sample.total_seconds / step.total_seconds


def run_pipeline_benchmark(smoke: bool = False) -> dict:
    """Sequential per-step-RNG baseline vs the prefetch grid."""
    dataset, split, model_cfg, trainer_cfg, grid = _setup(smoke)

    # Warm-up (first-touch allocations, BLAS init), then the baseline.
    _fit_once(dataset, split, model_cfg,
              {**trainer_cfg, "steps": 2}, per_step_rng=True)
    expected, baseline_seconds, _ = _fit_once(
        dataset, split, model_cfg, trainer_cfg, per_step_rng=True)
    legacy_history, legacy_seconds, _ = _fit_once(
        dataset, split, model_cfg, trainer_cfg)
    steps = trainer_cfg["steps"]

    runs = []
    bit_identical = True
    for backend, workers, depth in grid:
        history, seconds, trainer = _fit_once(
            dataset, split, model_cfg, trainer_cfg,
            prefetch_workers=workers, prefetch_buffer=depth,
            prefetch_backend=backend)
        snapshot = trainer.last_pipeline.snapshot()
        result = {
            "backend": backend,
            "workers": workers,
            "buffer_depth": depth,
            "seconds": seconds,
            "steps_per_second": steps / seconds,
            "speedup_vs_sequential": baseline_seconds / seconds,
            "bit_identical_to_sequential": history == expected,
            "buffer_hits": snapshot["pipeline.buffer_hits"]["value"],
            "starvations": snapshot["pipeline.starvations"]["value"],
            "wait_seconds_total": snapshot["pipeline.wait_seconds"]["sum"],
            "sample_seconds_p50": snapshot["pipeline.sample_seconds"]["p50"],
        }
        bit_identical = bit_identical and result["bit_identical_to_sequential"]
        runs.append(result)

    best = max(runs, key=lambda r: r["speedup_vs_sequential"])
    cpu_count = os.cpu_count() or 1
    return {
        "benchmark": "pipeline_throughput",
        "smoke": smoke,
        "cpu_count": cpu_count,
        "parallel_hardware": cpu_count > 1,
        "config": {
            "steps": steps,
            "batch_size": trainer_cfg["batch_size"],
            "context_users": trainer_cfg["context_users"],
            "context_items": trainer_cfg["context_items"],
            "num_users": dataset.num_users,
            "num_items": dataset.num_items,
        },
        "sample_fraction_sequential": _sample_fraction(
            dataset, split, model_cfg, trainer_cfg),
        "baseline_sequential": {
            "seconds": baseline_seconds,
            "steps_per_second": steps / baseline_seconds,
        },
        "legacy_shared_stream": {
            "seconds": legacy_seconds,
            "steps_per_second": steps / legacy_seconds,
            # Different (equally valid) RNG scheme — different trajectory.
            "same_trajectory_as_baseline": legacy_history == expected,
        },
        "runs": runs,
        "bit_identical_all_runs": bit_identical,
        "best_speedup": best["speedup_vs_sequential"],
        "best_config": {"backend": best["backend"],
                        "workers": best["workers"],
                        "buffer_depth": best["buffer_depth"]},
    }


def render_pipeline_bench(payload: dict) -> str:
    """Text table of the benchmark payload (CLI + results/ artifact)."""
    base = payload["baseline_sequential"]
    lines = [
        f"sequential baseline (per-step rng): "
        f"{base['steps_per_second']:6.2f} steps/s "
        f"({base['seconds']:.2f}s for {payload['config']['steps']} steps); "
        f"sample fraction {payload['sample_fraction_sequential']:.0%}",
        f"legacy shared-stream sequential:    "
        f"{payload['legacy_shared_stream']['steps_per_second']:6.2f} steps/s",
    ]
    for run in payload["runs"]:
        lines.append(
            f"{run['backend']:<7s} workers={run['workers']} "
            f"depth={run['buffer_depth']}: "
            f"{run['steps_per_second']:6.2f} steps/s "
            f"({run['speedup_vs_sequential']:.2f}x)  "
            f"hits {run['buffer_hits']:.0f} "
            f"starved {run['starvations']:.0f}  "
            f"bit-identical: {run['bit_identical_to_sequential']}")
    best = payload["best_config"]
    lines.append(
        f"best: {best['backend']} workers={best['workers']} "
        f"depth={best['buffer_depth']} -> {payload['best_speedup']:.2f}x "
        f"(cpu_count={payload['cpu_count']})")
    return "\n".join(lines)


def write_pipeline_bench_json(payload: dict, repo_root: Path | None = None) -> Path:
    """Write the trajectory file ``BENCH_pipeline.json`` at the repo root."""
    if repo_root is None:
        repo_root = Path(__file__).resolve().parents[3]
    path = repo_root / PIPELINE_BENCH_FILENAME
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
