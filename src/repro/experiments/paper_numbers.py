"""The paper's reported results, transcribed as data.

Used by the ``compare`` CLI command and EXPERIMENTS.md to put measured
numbers next to the paper's, and by the shape checks that assert the
qualitative findings (who wins, which ablation is worst, …).

Values are (Precision@5, NDCG@5, MAP@5) tuples from Tables III-VI of the
paper; ``None`` marks cells that did not survive the source-text extraction
legibly.  Scenario keys follow ``repro.data.splits``: ``user`` (UC),
``item`` (IC), ``both`` (U&I C).
"""

from __future__ import annotations

__all__ = [
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_TABLE6",
    "PAPER_FINDINGS",
    "paper_cell",
]

# Table III — MovieLens-1M, metrics @5.
PAPER_TABLE3: dict[str, dict[str, tuple]] = {
    "user": {
        "NeuMF": (0.4702, 0.7073, 0.3713),
        "Wide&Deep": (0.5189, 0.8385, 0.4157),
        "DeepFM": (0.5169, 0.8367, 0.4123),
        "AFN": (0.5084, 0.8294, 0.3998),
        "GraphHINGE": (0.5180, 0.7809, 0.4076),
        "MetaHIN": (0.4392, 0.8005, 0.3579),
        "MAMO": (0.4663, 0.5905, 0.3405),
        "TaNP": (0.5715, 0.8718, 0.4728),
        "MeLU": (0.5093, 0.6254, 0.4011),
        "HIRE": (0.6999, 0.9169, 0.6454),
    },
    "item": {
        "NeuMF": (0.5726, 0.7503, 0.4982),
        "Wide&Deep": (0.3006, 0.5196, 0.1925),
        "DeepFM": (0.3091, 0.5309, 0.2012),
        "AFN": (0.2989, 0.4855, 0.1891),
        "GraphHINGE": (0.1428, 0.1779, 0.0567),
        "MetaHIN": (0.4369, 0.7941, 0.3541),
        "MAMO": (0.4687, 0.5942, 0.3439),
        "TaNP": (0.4068, 0.7564, 0.2720),
        "MeLU": (0.4893, 0.5920, 0.3666),
        "HIRE": (0.5989, 0.8640, 0.5304),
    },
    "both": {
        "NeuMF": (0.5599, 0.7059, 0.4850),
        "Wide&Deep": (0.2952, 0.5113, 0.1857),
        "DeepFM": (0.3099, 0.5286, 0.1971),
        "AFN": (0.2918, 0.4749, 0.1828),
        "GraphHINGE": (0.0992, 0.1131, 0.0335),
        "MetaHIN": (0.4392, 0.8005, 0.3579),
        "MAMO": (0.4114, 0.6046, 0.2813),
        "TaNP": (0.4680, 0.7663, 0.3393),
        "MeLU": (None, 0.5692, None),
        "HIRE": (0.6030, 0.8693, 0.5362),
    },
}

# Table IV — Bookcrossing, metrics @5 (HIN/social baselines not applicable).
PAPER_TABLE4: dict[str, dict[str, tuple]] = {
    "user": {
        "NeuMF": (0.3328, 0.3887, 0.2657),
        "Wide&Deep": (0.2852, 0.5408, 0.2161),
        "DeepFM": (0.2956, 0.5154, 0.1870),
        "AFN": (0.2205, 0.4970, 0.1462),
        "MAMO": (0.4016, 0.2752, 0.3062),
        "TaNP": (0.4118, 0.8504, 0.3338),
        "MeLU": (0.4651, 0.5860, 0.3534),
        "HIRE": (0.5713, 0.8931, 0.5079),
    },
    "item": {
        "NeuMF": (0.4070, 0.3632, 0.3282),
        "Wide&Deep": (0.5007, 0.8014, 0.3814),
        "DeepFM": (0.5246, 0.8110, 0.4092),
        "AFN": (0.4915, 0.8018, 0.4040),
        "MAMO": (0.4129, 0.2810, 0.3246),
        "TaNP": (0.4116, 0.8545, 0.3125),
        "MeLU": (0.4925, 0.6159, 0.3764),
        "HIRE": (0.5837, 0.8925, 0.5174),
    },
    "both": {
        "NeuMF": (0.3829, 0.4221, 0.2976),
        "Wide&Deep": (0.4037, 0.7387, 0.3304),
        "DeepFM": (0.3927, 0.6848, 0.3018),
        "AFN": (0.3476, 0.6344, 0.2815),
        "MAMO": (0.4100, 0.3256, 0.3026),
        "TaNP": (0.5114, 0.8812, 0.4365),
        "MeLU": (0.4335, 0.5465, 0.3349),
        "HIRE": (0.6077, 0.9060, 0.5529),
    },
}

# Table V — Douban, metrics @5 (GraphRec applicable).
PAPER_TABLE5: dict[str, dict[str, tuple]] = {
    "user": {
        "NeuMF": (0.4443, 0.3334, 0.4056),
        "Wide&Deep": (0.5442, 0.7725, 0.4443),
        "DeepFM": (0.5133, 0.7261, 0.4141),
        "AFN": (0.5918, 0.8041, 0.4919),
        "GraphRec": (0.6065, 0.5073, 0.5477),
        "MAMO": (0.6098, 0.7356, 0.5101),
        "TaNP": (0.6408, 0.9020, 0.5465),
        "MeLU": (None, 0.6452, 0.3463),
        "HIRE": (0.7152, 0.9269, 0.6595),
    },
    "item": {
        "NeuMF": (0.3919, 0.4305, 0.3050),
        "Wide&Deep": (0.2285, 0.4496, 0.1787),
        "DeepFM": (0.2390, 0.4723, 0.1856),
        "AFN": (0.2600, 0.5014, 0.2044),
        "GraphRec": (0.3460, 0.3973, 0.2847),
        "MAMO": (0.5980, 0.7250, 0.4986),
        "TaNP": (0.4945, 0.8502, 0.3808),
        "MeLU": (0.5087, 0.6650, 0.3876),
        "HIRE": (0.6128, 0.8926, None),
    },
    "both": {
        "NeuMF": (0.2763, 0.3898, 0.2266),
        "Wide&Deep": (0.0910, 0.1615, 0.0819),
        "DeepFM": (0.0682, 0.1433, 0.0596),
        "AFN": (0.0609, 0.1484, 0.0552),
        "GraphRec": (0.3568, 0.3900, 0.2624),
        "MAMO": (0.6009, 0.7278, 0.5037),
        "TaNP": (0.5032, 0.6734, 0.4982),
        "MeLU": (0.6266, 0.6737, 0.3934),
        "HIRE": (None, 0.8902, 0.5416),
    },
}

# Table VI — attention-layer ablation on MovieLens-1M, metrics @5.
PAPER_TABLE6: dict[str, dict[str, tuple]] = {
    "user": {
        "wo/ Item & Attribute": (0.4465, 0.7858, 0.3232),
        "wo/ User & Attribute": (0.6552, 0.8926, 0.5838),
        "wo/ User & Item": (0.6752, 0.8986, 0.6040),
        "wo/ User": (0.6590, 0.8925, 0.5885),
        "wo/ Item": (0.4461, 0.7866, 0.3238),
        "wo/ Attribute": (0.4477, 0.7865, 0.3242),
        "full model": (0.6787, 0.9002, 0.6097),
    },
    "item": {
        "wo/ Item & Attribute": (0.4392, 0.7600, 0.3177),
        "wo/ User & Attribute": (0.5268, 0.8174, 0.4301),
        "wo/ User & Item": (0.5163, 0.8128, 0.4202),
        "wo/ User": (0.5272, 0.8116, 0.4223),
        "wo/ Item": (0.4414, 0.7610, 0.3193),
        "wo/ Attribute": (0.4413, 0.7611, 0.3200),
        "full model": (0.5871, 0.8475, 0.4993),
    },
    "both": {
        "wo/ Item & Attribute": (0.4663, 0.7700, 0.3440),
        "wo/ User & Attribute": (0.5227, 0.8138, 0.4239),
        "wo/ User & Item": (0.5067, 0.8079, 0.4073),
        "wo/ User": (0.5239, 0.8111, 0.4213),
        "wo/ Item": (0.4687, 0.7700, 0.3447),
        "wo/ Attribute": (0.4671, 0.7699, 0.3442),
        "full model": (0.5848, 0.8493, 0.5008),
    },
}

# The qualitative findings each artifact is judged on (EXPERIMENTS.md).
PAPER_FINDINGS: dict[str, str] = {
    "table3": "HIRE leads on MovieLens in (nearly) all cells; CF family weakest "
              "on cold entities; meta-learners second tier.",
    "table4": "HIRE leads on Bookcrossing; TaNP/MeLU second tier.",
    "table5": "HIRE leads on Douban overall; GraphRec competitive only for "
              "cold users; CF family collapses for cold entities.",
    "fig6": "CF family fastest at test time; HIRE mid-pack; adaptation-heavy "
            "methods (MAMO) slowest.",
    "fig7": "Accuracy peaks at K = 3 HIM blocks on MovieLens; context size 32 "
            "is the sweet spot; both sweeps are non-monotonic.",
    "table6": "Full HIM is best overall; user-attention-only "
              "('wo/ Item & Attribute') is weakest.",
    "fig8": "Neighbourhood sampling beats random in all scenarios; feature "
            "similarity helps only for cold users.",
    "fig9": "Attention matrices are asymmetric; users/items with shared "
            "preferences attend to each other; high-rating pairs show more "
            "attribute interaction.",
}

_TABLES = {"table3": PAPER_TABLE3, "table4": PAPER_TABLE4,
           "table5": PAPER_TABLE5, "table6": PAPER_TABLE6}

_METRIC_INDEX = {"precision": 0, "ndcg": 1, "map": 2}


def paper_cell(table: str, scenario: str, row: str, metric: str = "ndcg"):
    """Paper value @5 for (table, scenario, model-or-variant, metric).

    Returns ``None`` when the cell was illegible in the source extraction.
    """
    values = _TABLES[table][scenario][row]
    return values[_METRIC_INDEX[metric]]
