"""Bounded, bit-reproducible fine-tune rounds over fresh rating deltas.

Online learning here is *cloned* fine-tuning: the active serving model is
never touched.  Each round copies its parameters into a fresh :class:`HIRE`,
builds a training view whose rating pool is the warm replay set plus every
logged delta (deltas override replayed values for re-rated pairs, matching
the serving graph's dedupe semantics), and runs a bounded number of
:class:`~repro.core.trainer.HIRETrainer` steps with per-step RNG derivation
(:func:`repro.pipeline.derive_step_rng`).  The round seed is itself derived
from ``(config seed, log offset)``, so a round is a pure function of

    (base checkpoint, log offset, seed)

— re-running it, at any prefetch worker count and on any backend, produces a
bit-identical candidate model.

Fresh deltas are emphasised by *seed-pair boosting*: the triple pool that
training contexts are seeded from repeats each fresh delta ``fresh_boost``
times.  The rating graph itself holds each rating once (duplicate triples
collapse in :class:`~repro.data.bipartite.RatingGraph`), so boosting only
biases where contexts are centred, never what they contain.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.model import HIRE
from ..core.sampling import ContextSampler, NeighborhoodSampler
from ..core.trainer import HIRETrainer, TrainerConfig
from ..data.schema import RatingDataset
from ..data.splits import ColdStartSplit

__all__ = [
    "FineTuneConfig",
    "FineTuneResult",
    "DeltaTrainingView",
    "IncrementalTrainer",
    "derive_round_seed",
    "ROUND_SEED_DOMAIN",
]

# Domain separator keying online fine-tune rounds apart from every other
# derived-generator family (training steps use repro.pipeline's
# STEP_RNG_DOMAIN, serving uses task_chunk_rng's raw key tuples).
ROUND_SEED_DOMAIN = 0x4F4E4C4E  # "ONLN"


def derive_round_seed(seed: int, log_offset: int) -> int:
    """Deterministic seed of the fine-tune round that trained up to
    ``log_offset``.

    Deriving from ``(seed, offset)`` — rather than advancing any shared
    state — makes the round a pure function of its inputs: two processes
    that agree on the base checkpoint and the log prefix produce
    bit-identical candidates.
    """
    sequence = np.random.SeedSequence(
        [ROUND_SEED_DOMAIN, int(seed), int(log_offset)])
    return int(sequence.generate_state(1, np.uint32)[0])


@dataclass
class DeltaTrainingView:
    """Duck-typed :class:`~repro.data.splits.ColdStartSplit` stand-in whose
    warm pool is ``replayed + deltas`` (deltas last, so a re-rated pair's
    newest value wins inside the rating graph's lookup).

    :class:`~repro.core.trainer.HIRETrainer` only reads ``dataset``,
    ``train_users``, ``train_items`` and ``train_ratings()`` from its
    split, so this small view is all the online loop needs to retarget
    training at the streamed data.
    """

    dataset: RatingDataset
    train_users: np.ndarray
    train_items: np.ndarray
    ratings: np.ndarray

    def train_ratings(self) -> np.ndarray:
        return self.ratings


@dataclass
class FineTuneConfig:
    """Knobs of one incremental fine-tune round."""

    steps: int = 25
    batch_size: int = 4
    base_lr: float = 5e-4
    # Seed-pair boost for fresh deltas: each fresh triple appears this many
    # times in the context-seeding pool (1 = no emphasis).
    fresh_boost: int = 4
    # Replay the warm training ratings alongside the deltas; False trains
    # on logged deltas alone (aggressive adaptation, higher forgetting).
    replay: bool = True
    context_users: int = 32
    context_items: int = 32
    reveal_fraction: float = 0.1
    grad_clip: float = 1.0
    flat_fraction: float = 0.7
    seed: int = 0
    # Context prefetching for the round (repro.pipeline); any worker count
    # produces bit-identical rounds thanks to per-step RNG derivation.
    prefetch_workers: int = 0
    prefetch_buffer: int = 4
    prefetch_backend: str = "thread"

    def __post_init__(self):
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.fresh_boost < 1:
            raise ValueError("fresh_boost must be >= 1")


@dataclass
class FineTuneResult:
    """One round's candidate model plus its provenance."""

    model: HIRE
    round_seed: int
    log_offset: int
    steps: int
    fresh_count: int
    replay_count: int
    seconds: float
    loss_history: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")


class IncrementalTrainer:
    """Clones the active model and fine-tunes it on logged rating deltas.

    Parameters
    ----------
    split:
        The cold-start split the base model was trained on; its warm
        quadrant is the replay pool and its warm entities seed the
        candidate pools (extended with any new entities the deltas touch).
    """

    def __init__(self, split: ColdStartSplit,
                 sampler: ContextSampler | None = None,
                 config: FineTuneConfig | None = None):
        self.split = split
        self.dataset = split.dataset
        self.sampler = sampler or NeighborhoodSampler()
        self.config = config or FineTuneConfig()
        self._base_ratings = split.train_ratings()

    # ------------------------------------------------------------------ #
    # Cloning
    # ------------------------------------------------------------------ #
    def clone(self, model: HIRE) -> HIRE:
        """A fresh :class:`HIRE` carrying ``model``'s parameters.

        ``state_dict`` / ``load_state_dict`` both copy, so the clone shares
        nothing with the serving model — training it can never perturb
        in-flight predictions.
        """
        clone = HIRE(self.dataset, model.config)
        clone.load_state_dict(model.state_dict())
        return clone

    # ------------------------------------------------------------------ #
    # Training view assembly
    # ------------------------------------------------------------------ #
    def build_view(self, deltas: np.ndarray,
                   fresh: np.ndarray | None = None) -> DeltaTrainingView:
        """The training view for one round.

        ``deltas`` is every logged triple up to the round's offset (they
        join the graph; newest value wins for re-rated pairs); ``fresh``
        (default: all of ``deltas``) is the subset whose seed-pair weight is
        boosted ``fresh_boost``-fold.
        """
        cfg = self.config
        deltas = np.asarray(deltas, dtype=np.float64).reshape(-1, 3)
        fresh = deltas if fresh is None else (
            np.asarray(fresh, dtype=np.float64).reshape(-1, 3))
        pools = [self._base_ratings] if cfg.replay else []
        pools.append(deltas)
        if cfg.fresh_boost > 1 and fresh.size:
            pools.extend([fresh] * (cfg.fresh_boost - 1))
        ratings = np.concatenate(pools) if pools else np.empty((0, 3))
        if ratings.size == 0:
            raise ValueError("nothing to fine-tune on: no replay, no deltas")
        train_users = np.union1d(self.split.train_users,
                                 deltas[:, 0].astype(np.int64))
        train_items = np.union1d(self.split.train_items,
                                 deltas[:, 1].astype(np.int64))
        return DeltaTrainingView(dataset=self.dataset,
                                 train_users=train_users,
                                 train_items=train_items,
                                 ratings=ratings)

    # ------------------------------------------------------------------ #
    # Fine-tuning
    # ------------------------------------------------------------------ #
    def fine_tune(self, base_model: HIRE, deltas: np.ndarray,
                  log_offset: int,
                  fresh: np.ndarray | None = None) -> FineTuneResult:
        """One bounded fine-tune round; returns the candidate model.

        The round is a pure function of ``(base_model parameters,
        log_offset, config.seed)``: the trainer runs with per-step RNG
        derivation, so any prefetch worker count reproduces it bit-exactly.
        """
        cfg = self.config
        round_seed = derive_round_seed(cfg.seed, log_offset)
        view = self.build_view(deltas, fresh)
        candidate = self.clone(base_model)
        trainer_config = TrainerConfig(
            steps=cfg.steps,
            batch_size=cfg.batch_size,
            context_users=cfg.context_users,
            context_items=cfg.context_items,
            reveal_fraction=cfg.reveal_fraction,
            base_lr=cfg.base_lr,
            grad_clip=cfg.grad_clip,
            flat_fraction=cfg.flat_fraction,
            seed=round_seed,
            per_step_rng=True,
            prefetch_workers=cfg.prefetch_workers,
            prefetch_buffer=cfg.prefetch_buffer,
            prefetch_backend=cfg.prefetch_backend,
        )
        start = time.perf_counter()
        trainer = HIRETrainer(candidate, view, sampler=self.sampler,
                              config=trainer_config)
        losses = trainer.fit()
        seconds = time.perf_counter() - start
        candidate.eval()
        fresh_count = len(deltas) if fresh is None else len(fresh)
        return FineTuneResult(
            model=candidate,
            round_seed=round_seed,
            log_offset=int(log_offset),
            steps=cfg.steps,
            fresh_count=fresh_count,
            replay_count=len(self._base_ratings) if cfg.replay else 0,
            seconds=seconds,
            loss_history=list(losses),
        )
