"""Promotion gate: probe-based accept/reject for fine-tuned candidates.

A candidate model earns its way into serving by beating (or at least
matching, within ``accept_margin``) the active model on a *frozen cold-start
probe* — a fixed list of :class:`~repro.eval.tasks.EvalTask` held out when
the gate is built.  Probe evaluation runs through
:class:`~repro.core.predictor.HIREPredictor` with per-task RNG derivation
and a fixed seed, so a model's probe score is a pure function of its
parameters: the same candidate always scores the same, and accept/reject
decisions are reproducible.

The gate also owns the *live window* check used for post-promotion
rollback: recent rating deltas are regrouped into pseudo-tasks (query-only,
no support) and the promoted model is scored against its predecessor on
them.  If the promoted model is worse by more than ``rollback_margin``, the
controller reverts the swap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.model import HIRE
from ..core.predictor import HIREPredictor, build_serving_graph
from ..core.sampling import ContextSampler, NeighborhoodSampler
from ..data.splits import ColdStartSplit
from ..eval.metrics import mae, rmse
from ..eval.tasks import EvalTask

__all__ = [
    "GateConfig",
    "ProbeResult",
    "GateDecision",
    "PromotionGate",
    "tasks_from_deltas",
]


@dataclass
class GateConfig:
    """Accept/reject thresholds of the promotion gate.

    ``accept_margin`` is the slack a candidate gets on the probe: it is
    promoted when ``candidate_rmse <= active_rmse * (1 + accept_margin)``.
    Zero (the default) demands the candidate be at least as good.
    ``rollback_margin`` is the live-window tolerance after promotion:
    exceeding ``previous_rmse * (1 + rollback_margin)`` reverts the swap.
    """

    accept_margin: float = 0.0
    rollback_margin: float = 0.05
    context_users: int = 32
    context_items: int = 32
    reveal_fraction: float = 0.1
    seed: int = 0

    def __post_init__(self):
        if self.accept_margin < 0:
            raise ValueError("accept_margin must be >= 0")
        if self.rollback_margin < 0:
            raise ValueError("rollback_margin must be >= 0")


@dataclass
class ProbeResult:
    """Pooled rating-accuracy of one model over one task list."""

    rmse: float
    mae: float
    num_tasks: int
    num_ratings: int


@dataclass
class GateDecision:
    """Outcome of judging a candidate against the active model."""

    accepted: bool
    candidate: ProbeResult
    active: ProbeResult
    margin: float
    reason: str


def tasks_from_deltas(deltas: np.ndarray, graph) -> list[EvalTask]:
    """Regroup rating deltas into query-only pseudo-tasks for live scoring.

    Pairs already observed in ``graph`` are dropped — the predictor's
    context assembly (rightly) refuses query cells that are visible at
    test time, and a rating the serving graph has absorbed is no longer a
    held-out signal.  Returns one task per user with surviving deltas.
    """
    deltas = np.asarray(deltas, dtype=np.float64).reshape(-1, 3)
    keep = [row for row in deltas
            if not graph.has_rating(int(row[0]), int(row[1]))]
    if not keep:
        return []
    deltas = np.stack(keep)
    tasks = []
    for user in np.unique(deltas[:, 0].astype(np.int64)):
        query = deltas[deltas[:, 0].astype(np.int64) == user]
        tasks.append(EvalTask(user=int(user),
                              support=np.empty((0, 3)), query=query))
    return tasks


class PromotionGate:
    """Judges candidates on a frozen cold-start probe.

    Parameters
    ----------
    split:
        The cold-start split the probe tasks were carved from; its warm
        quadrant plus the probe supports form the visible evaluation graph.
    probe_tasks:
        The held-out tasks every model is scored on.  Frozen at
        construction: the probe never drifts with the stream, so scores
        across rounds are comparable.
    """

    def __init__(self, split: ColdStartSplit, probe_tasks: list[EvalTask],
                 config: GateConfig | None = None,
                 sampler: ContextSampler | None = None):
        if not probe_tasks:
            raise ValueError("the probe needs at least one task")
        self.split = split
        self.probe_tasks = list(probe_tasks)
        self.config = config or GateConfig()
        self.sampler = sampler or NeighborhoodSampler()
        # The visible evaluation graph (warm ratings + probe supports);
        # also the leak filter live-window pseudo-tasks are checked against.
        self.graph, _, _ = build_serving_graph(split, self.probe_tasks)

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def evaluate(self, model: HIRE,
                 tasks: list[EvalTask] | None = None) -> ProbeResult:
        """Pooled RMSE/MAE of ``model`` over ``tasks`` (default: the probe).

        Deterministic per model: the predictor derives a generator per
        ``(task, chunk)`` from the gate's fixed seed, so scores do not
        depend on task order or on anything scored before.
        """
        tasks = self.probe_tasks if tasks is None else tasks
        if not tasks:
            raise ValueError("cannot evaluate over an empty task list")
        cfg = self.config
        predictor = HIREPredictor(
            model, self.split, tasks,
            sampler=self.sampler,
            context_users=cfg.context_users,
            context_items=cfg.context_items,
            reveal_fraction=cfg.reveal_fraction,
            seed=cfg.seed,
            per_task_rng=True,
        )
        predicted = np.concatenate(
            [predictor.predict_task(task) for task in tasks])
        actual = np.concatenate([task.query_ratings for task in tasks])
        return ProbeResult(
            rmse=float(rmse(predicted, actual)),
            mae=float(mae(predicted, actual)),
            num_tasks=len(tasks),
            num_ratings=len(actual),
        )

    # ------------------------------------------------------------------ #
    # Decisions
    # ------------------------------------------------------------------ #
    def decide(self, candidate: ProbeResult,
               active: ProbeResult) -> GateDecision:
        """Accept iff the candidate's probe RMSE is within the margin."""
        margin = self.config.accept_margin
        threshold = active.rmse * (1.0 + margin)
        accepted = candidate.rmse <= threshold
        if accepted:
            reason = (f"candidate rmse {candidate.rmse:.4f} <= "
                      f"threshold {threshold:.4f} (active {active.rmse:.4f})")
        else:
            reason = (f"candidate rmse {candidate.rmse:.4f} > "
                      f"threshold {threshold:.4f} (active {active.rmse:.4f})")
        return GateDecision(accepted=accepted, candidate=candidate,
                            active=active, margin=margin, reason=reason)

    def judge(self, candidate_model: HIRE, active_model: HIRE) -> GateDecision:
        """Probe both models and decide; convenience wrapper."""
        return self.decide(self.evaluate(candidate_model),
                           self.evaluate(active_model))

    def live_tasks(self, deltas: np.ndarray) -> list[EvalTask]:
        """Pseudo-tasks over recent deltas, filtered against the probe
        graph (see :func:`tasks_from_deltas`)."""
        return tasks_from_deltas(deltas, self.graph)

    def regressed(self, promoted: ProbeResult,
                  previous: ProbeResult) -> bool:
        """Live-window rollback test: is the promoted model worse than its
        predecessor beyond ``rollback_margin``?"""
        return promoted.rmse > previous.rmse * (1.0 + self.config.rollback_margin)
