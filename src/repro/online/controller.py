"""The online loop: ingest → fine-tune → gate → hot swap → (maybe) roll back.

:class:`OnlineController` closes the loop the rest of :mod:`repro.online`
provides pieces for.  Fresh ratings enter through :meth:`ingest` (folded
into the serving graph immediately, teed into the :class:`RatingLog` for
the trainer); once enough deltas accumulate, a *round* clones the active
model, fine-tunes it on the log (:class:`IncrementalTrainer`), scores it on
the frozen cold-start probe (:class:`PromotionGate`), and — if the gate
accepts — registers and activates it in the :class:`ModelRegistry`.  The
registry's generation bump plus the inference engine's ``.data``-read
parameters make the swap zero-downtime: in-flight batches finish on the
model they resolved, later batches see the winner.

Rounds run either synchronously (:meth:`run_round`, the deterministic path
tests and benchmarks drive) or on a drain-aware background thread
(:meth:`start` / :meth:`close`, one :class:`repro.concurrency.WorkerPool`
worker polling the log).  Both paths share one lock, so a manual round
never interleaves with the background one.

After a promotion the controller watches the *live window* — deltas that
arrived since the swap — and reverts to the predecessor when the promoted
model regresses beyond the gate's rollback margin.  Telemetry streams into
an :class:`repro.obs.MetricsRegistry` under the ``online.`` prefix, and
:meth:`health` evaluates the staleness SLO
(:func:`repro.obs.default_online_rules`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..concurrency import WorkerPool
from ..serve.registry import ModelRegistry
from .gate import GateDecision, ProbeResult, PromotionGate
from .log import RatingLog
from .trainer import IncrementalTrainer

__all__ = ["OnlineConfig", "OnlineController"]


@dataclass
class OnlineConfig:
    """Knobs of the online control loop."""

    # A round only fires once this many deltas sit beyond the trained
    # offset; smaller batches are left to accumulate.
    min_new_ratings: int = 8
    # Background-thread poll cadence (seconds between log checks).
    poll_interval_seconds: float = 0.25
    # How many controller-created versions to keep registered; older ones
    # are pruned after each promotion (the active and rollback targets are
    # never pruned).
    retain_versions: int = 2
    rollback_enabled: bool = True
    # Live-window rollback checks need at least this many held-out deltas
    # to be meaningful.
    min_rollback_ratings: int = 4
    version_prefix: str = "online"
    metrics_prefix: str = "online"
    # Staleness SLO budget: seconds since the serving model last absorbed
    # the stream before health() degrades.
    max_staleness_seconds: float = 3600.0
    window_seconds: float = 600.0
    short_window_seconds: float = 60.0

    def __post_init__(self):
        if self.min_new_ratings < 1:
            raise ValueError("min_new_ratings must be >= 1")
        if self.retain_versions < 1:
            raise ValueError("retain_versions must be >= 1")
        if self.window_seconds <= 0 or self.short_window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.short_window_seconds > self.window_seconds:
            raise ValueError("short_window_seconds must be <= window_seconds")


class OnlineController:
    """Runs the incremental-learning loop against a live serving stack.

    Parameters
    ----------
    registry:
        The :class:`ModelRegistry` the serving layer resolves its model
        from; promoted candidates are registered and activated here.
    trainer / gate:
        The round's two halves: fine-tuning and probe-based judgement.
    log:
        The delta log rounds consume.  Pass the same instance the serving
        layer tees into (``PredictionService(rating_log=...)``), or let the
        controller own a fresh one.
    service:
        Optional :class:`repro.serve.PredictionService`; when present,
        :meth:`ingest` routes deltas through ``service.update_ratings`` so
        the graph, the cache generation, and the log stay in lockstep.
    """

    def __init__(self, registry: ModelRegistry, trainer: IncrementalTrainer,
                 gate: PromotionGate, log: RatingLog | None = None,
                 service=None, config: OnlineConfig | None = None,
                 metrics: obs.MetricsRegistry | None = None,
                 clock=time.monotonic):
        self.registry = registry
        self.trainer = trainer
        self.gate = gate
        self.log = log if log is not None else RatingLog()
        self.service = service
        self.config = config or OnlineConfig()
        self.metrics = metrics if metrics is not None else (
            service.metrics if service is not None else obs.MetricsRegistry())
        self._clock = clock
        self._lock = threading.RLock()
        self._round_index = 0
        # Log offset the *active* model has absorbed; rounds train on
        # [0, tail) with [trained_offset, tail) boosted as fresh.
        self._trained_offset = 0
        # Rollback state: the predecessor of the last promotion and the
        # log offset the promotion happened at (its live window starts
        # there).  Cleared after a rollback so reverts never flip-flop.
        self._previous_name: str | None = None
        self._previous_probe: ProbeResult | None = None
        self._promoted_offset = 0
        self._active_probe: ProbeResult | None = None
        self._created: list[str] = []
        self._last_promotion_time = clock()
        self._num_slices = max(1, round(self.config.window_seconds
                                        / self.config.short_window_seconds))
        self._slo_rules = obs.default_online_rules(
            max_staleness_seconds=self.config.max_staleness_seconds)
        self._window_probe_rmse = self._windowed_histogram("window.probe_rmse")
        self._pool: WorkerPool | None = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def ingest(self, ratings: np.ndarray) -> int:
        """Feed fresh rating triples into the loop; returns applied count.

        With a service attached, the deltas go through
        ``service.update_ratings`` — deduped, folded into the visible
        graph, and teed into the shared log in one step.  Without one they
        are appended to the log directly.
        """
        ratings = np.asarray(ratings, dtype=np.float64).reshape(-1, 3)
        if self.service is not None:
            applied = self.service.update_ratings(ratings)
        else:
            start, end = self.log.append(ratings)
            applied = end - start
        self._gauge("log_size").set(len(self.log))
        self._gauge("pending_ratings").set(self.pending())
        return applied

    def pending(self) -> int:
        """Deltas the active model has not trained on yet."""
        return len(self.log) - self._trained_offset

    # ------------------------------------------------------------------ #
    # The round
    # ------------------------------------------------------------------ #
    def run_round(self, force: bool = False) -> dict:
        """One synchronous loop iteration; returns a summary dict.

        Order inside the round: refresh staleness, check the live window
        for a post-promotion regression (roll back if confirmed), then —
        if at least ``min_new_ratings`` deltas are pending, or ``force``
        — fine-tune a candidate, probe it, and let the gate decide.
        """
        with self._lock:
            self._counter("rounds_total").inc()
            self._touch_staleness()
            summary: dict = {"round": self._round_index,
                             "pending": self.pending()}

            rolled_back = self._maybe_rollback()
            if rolled_back:
                summary["status"] = "rolled_back"
                return summary

            if self.pending() < self.config.min_new_ratings and not force:
                self._counter("skipped_total").inc()
                summary["status"] = "skipped"
                return summary

            with obs.span("online/round"):
                summary.update(self._train_and_judge())
            self._round_index += 1
            return summary

    def _train_and_judge(self) -> dict:
        cfg = self.config
        tail = len(self.log)
        deltas = self.log.slice(0, tail)
        fresh = self.log.slice(self._trained_offset, tail)
        active_name, active_model = self.registry.active()

        with obs.span("online/train"):
            result = self.trainer.fine_tune(active_model, deltas, tail,
                                            fresh=fresh)
        self._histogram("train_seconds").observe(result.seconds)

        with obs.span("online/probe"):
            if self._active_probe is None:
                self._active_probe = self.gate.evaluate(active_model)
            candidate_probe = self.gate.evaluate(result.model)
        decision = self.gate.decide(candidate_probe, self._active_probe)
        self._window_probe_rmse.observe(candidate_probe.rmse)

        summary = {
            "log_offset": tail,
            "round_seed": result.round_seed,
            "candidate_rmse": candidate_probe.rmse,
            "active_rmse": self._active_probe.rmse,
            "reason": decision.reason,
        }
        if decision.accepted:
            summary["status"] = "promoted"
            summary["version"] = self._promote(result.model, active_name,
                                               candidate_probe, tail)
        else:
            self._counter("rejections_total").inc()
            summary["status"] = "rejected"
        # Either way the deltas are accounted for: a rejected candidate is
        # deterministic, so retrying the identical round would only spin.
        self._trained_offset = tail
        self._gauge("pending_ratings").set(self.pending())
        return summary

    def _promote(self, model, active_name: str, probe: ProbeResult,
                 tail: int) -> str:
        name = f"{self.config.version_prefix}-r{self._round_index}"
        with obs.span("online/swap"):
            start = time.perf_counter()
            self.registry.add(name, model, activate=True,
                              metadata={"log_offset": tail,
                                        "probe_rmse": probe.rmse})
            swap_seconds = time.perf_counter() - start
        self._histogram("swap_seconds").observe(swap_seconds)
        self._counter("promotions_total").inc()
        self._previous_name = active_name
        self._previous_probe = self._active_probe
        self._active_probe = probe
        self._promoted_offset = tail
        self._last_promotion_time = self._clock()
        self._touch_staleness()
        self._created.append(name)
        self._prune_versions()
        return name

    def _prune_versions(self) -> None:
        keep = {self.registry.active_name, self._previous_name}
        while len(self._created) > self.config.retain_versions:
            victim = next((n for n in self._created if n not in keep), None)
            if victim is None:
                break
            self._created.remove(victim)
            self.registry.unregister(victim)

    # ------------------------------------------------------------------ #
    # Rollback
    # ------------------------------------------------------------------ #
    def _maybe_rollback(self) -> bool:
        cfg = self.config
        if not cfg.rollback_enabled or self._previous_name is None:
            return False
        window = self.log.since(self._promoted_offset)
        if len(window) < cfg.min_rollback_ratings:
            return False
        tasks = self.gate.live_tasks(window)
        if not tasks:
            return False
        active_name, active_model = self.registry.active()
        previous_model = self.registry.get(self._previous_name)
        with obs.span("online/probe"):
            promoted = self.gate.evaluate(active_model, tasks)
            previous = self.gate.evaluate(previous_model, tasks)
        if not self.gate.regressed(promoted, previous):
            return False
        with obs.span("online/swap"):
            self.registry.activate(self._previous_name)
        self._counter("rollbacks_total").inc()
        self._active_probe = self._previous_probe
        # One revert per promotion: clearing the state stops flip-flops.
        self._previous_name = None
        self._previous_probe = None
        self._last_promotion_time = self._clock()
        self._touch_staleness()
        return True

    # ------------------------------------------------------------------ #
    # Background loop
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Run rounds on a background thread until :meth:`close`."""
        if self._closed:
            raise RuntimeError("controller is closed")
        if self._pool is not None:
            return
        self._pool = WorkerPool(self._loop, num_workers=1,
                                name="online-controller")
        self._pool.start()

    def _loop(self, stop_event) -> bool:
        stop_event.wait(self.config.poll_interval_seconds)
        if stop_event.is_set():
            return False
        if (self.pending() >= self.config.min_new_ratings
                or self._previous_name is not None):
            self.run_round()
        else:
            self._touch_staleness()
        return True

    def close(self, timeout: float = 30.0) -> None:
        """Stop the background thread; an in-flight round finishes first.

        Drain-aware: the worker observes the stop event only between
        rounds, so a promotion is never abandoned half-swapped.
        """
        self._closed = True
        if self._pool is not None:
            self._pool.close(timeout)
            self._pool = None

    def __enter__(self) -> "OnlineController":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def staleness_seconds(self) -> float:
        """Seconds since the serving model last absorbed the stream."""
        return max(0.0, self._clock() - self._last_promotion_time)

    def _touch_staleness(self) -> None:
        self._gauge("staleness_seconds").set(self.staleness_seconds())

    def health(self) -> dict:
        """Staleness SLO state plus loop liveness."""
        staleness = self.staleness_seconds()
        self._touch_staleness()
        probes = {"model_staleness_seconds": (staleness, staleness)}
        statuses = obs.evaluate_slos(self._slo_rules, probes)
        return {
            "state": obs.worst_state(statuses),
            "slos": [status.snapshot() for status in statuses],
            "staleness_seconds": staleness,
            "background_running": (self._pool is not None
                                   and self._pool.alive_count() > 0),
            "closed": self._closed,
        }

    def stats(self) -> dict:
        """One JSON-able snapshot of the loop's state."""
        with self._lock:
            return {
                "rounds": self._round_index,
                "trained_offset": self._trained_offset,
                "pending": self.pending(),
                "active": self.registry.active_name,
                "rollback_target": self._previous_name,
                "created_versions": list(self._created),
                "active_probe_rmse": (None if self._active_probe is None
                                      else self._active_probe.rmse),
                "log": self.log.stats(),
            }

    # ------------------------------------------------------------------ #
    # Metrics plumbing (mirrors the serve tier's helpers)
    # ------------------------------------------------------------------ #
    def _metric_name(self, name: str) -> str:
        return f"{self.config.metrics_prefix}.{name}"

    def _counter(self, name: str):
        return self.metrics.counter(self._metric_name(name))

    def _gauge(self, name: str):
        return self.metrics.gauge(self._metric_name(name))

    def _histogram(self, name: str):
        return self.metrics.histogram(self._metric_name(name))

    def _windowed_histogram(self, name: str):
        cfg = self.config
        return self.metrics.instrument(
            self._metric_name(name),
            lambda full_name: obs.WindowedHistogram(
                full_name, window_seconds=cfg.window_seconds,
                num_slices=self._num_slices, clock=self._clock))
