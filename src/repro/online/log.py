"""Append-only log of rating deltas feeding the online fine-tuning loop.

The serving layer folds fresh ratings into its graph immediately
(:meth:`repro.serve.PredictionService.update_ratings`); the :class:`RatingLog`
is the durable trail those deltas leave behind so the background trainer can
consume them later, at its own pace.  Offsets are the contract: every
appended triple gets a monotonically increasing position, and a fine-tune
round is keyed by the log offset it trained up to — re-running from the same
``(checkpoint, offset, seed)`` replays exactly the same deltas, which is
half of what makes rounds bit-reproducible (the other half is the per-step
RNG derivation, :func:`repro.online.derive_round_seed`).

The log is thread-safe and in-memory; an optional ``path`` tees every append
to a JSONL file (one ``{"offset", "ratings"}`` record per batch) so a
restarted process can rebuild the log with :meth:`RatingLog.load`.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import numpy as np

__all__ = ["RatingLog"]


class RatingLog:
    """Thread-safe append-only store of ``(user, item, rating)`` triples."""

    def __init__(self, path: str | Path | None = None):
        self._lock = threading.Lock()
        self._batches: list[np.ndarray] = []
        self._size = 0
        self._appends = 0
        self._path = Path(path) if path is not None else None

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def append(self, ratings: np.ndarray) -> tuple[int, int]:
        """Append a batch of triples; returns its ``(start, end)`` offsets.

        ``end`` is the exclusive offset after the batch — the value a
        consumer records as "trained up to here".  Empty batches are legal
        and leave the log untouched (``start == end``).
        """
        ratings = np.asarray(ratings, dtype=np.float64).reshape(-1, 3)
        with self._lock:
            start = self._size
            if ratings.size:
                self._batches.append(ratings.copy())
                self._size += len(ratings)
                self._appends += 1
                if self._path is not None:
                    record = {"offset": start, "ratings": ratings.tolist()}
                    with self._path.open("a", encoding="utf-8") as handle:
                        handle.write(json.dumps(record) + "\n")
            return start, self._size

    @classmethod
    def load(cls, path: str | Path, resume: bool = True) -> "RatingLog":
        """Rebuild a log from its JSONL trail.

        ``resume=True`` keeps teeing subsequent appends to the same file;
        ``False`` loads a read-only-by-convention copy (appends stay
        in-memory only).
        """
        log = cls(path=path if resume else None)
        path = Path(path)
        if path.exists():
            with path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    record = json.loads(line)
                    ratings = np.asarray(record["ratings"], dtype=np.float64)
                    with log._lock:
                        log._batches.append(ratings.reshape(-1, 3))
                        log._size += len(log._batches[-1])
                        log._appends += 1
        return log

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def slice(self, start: int, end: int | None = None) -> np.ndarray:
        """Triples in ``[start, end)`` as an ``(k, 3)`` array (copies).

        ``end=None`` reads to the current tail.  Offsets outside the log
        clamp rather than raise — a consumer holding yesterday's tail can
        always ask for "everything since".
        """
        with self._lock:
            size = self._size
            end = size if end is None else min(int(end), size)
            start = max(int(start), 0)
            if start >= end:
                return np.empty((0, 3))
            flat = np.concatenate(self._batches) if self._batches else np.empty((0, 3))
        return flat[start:end].copy()

    def since(self, offset: int) -> np.ndarray:
        """Everything appended at or after ``offset``."""
        return self.slice(offset)

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def stats(self) -> dict:
        """Size and append counts as one JSON-able snapshot."""
        with self._lock:
            return {
                "size": self._size,
                "batches": self._appends,
                "persisted": self._path is not None,
            }
