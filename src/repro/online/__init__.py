"""``repro.online`` — incremental fine-tuning with gated promotion.

Closes the loop from rating ingestion to model deployment for the
cold-start serving stack (see ``docs/online_learning.md``):

* :mod:`~repro.online.log` — :class:`RatingLog`, the append-only delta
  trail whose offsets key every fine-tune round.
* :mod:`~repro.online.trainer` — :class:`IncrementalTrainer`, cloning the
  active model and running bounded, bit-reproducible fine-tune rounds on
  fresh + replayed contexts (per-step RNG derivation; any prefetch worker
  count yields the same candidate).
* :mod:`~repro.online.gate` — :class:`PromotionGate`, judging candidates
  on a frozen cold-start probe (RMSE/MAE) and arming post-promotion
  rollback over the live delta window.
* :mod:`~repro.online.controller` — :class:`OnlineController`, the loop
  itself: drain-aware background thread, zero-downtime hot swaps through
  :class:`repro.serve.ModelRegistry`, ``online.*`` telemetry, and the
  staleness SLO (:func:`repro.obs.default_online_rules`).
"""

from .controller import OnlineConfig, OnlineController
from .gate import (
    GateConfig,
    GateDecision,
    ProbeResult,
    PromotionGate,
    tasks_from_deltas,
)
from .log import RatingLog
from .trainer import (
    ROUND_SEED_DOMAIN,
    DeltaTrainingView,
    FineTuneConfig,
    FineTuneResult,
    IncrementalTrainer,
    derive_round_seed,
)

__all__ = [
    "RatingLog",
    "FineTuneConfig",
    "FineTuneResult",
    "DeltaTrainingView",
    "IncrementalTrainer",
    "derive_round_seed",
    "ROUND_SEED_DOMAIN",
    "GateConfig",
    "GateDecision",
    "ProbeResult",
    "PromotionGate",
    "tasks_from_deltas",
    "OnlineConfig",
    "OnlineController",
]
