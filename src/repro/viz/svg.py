"""Dependency-free SVG chart primitives for the figure artifacts.

The paper's Figures 6-9 are bar charts, line plots and heatmaps; this
module renders each chart type as a standalone SVG string so the benchmark
suite can emit viewable figures (``results/*.svg``) without matplotlib.

Only what the figures need is implemented: grouped bars with log-ish
scaling for timing data, multi-series line charts with markers for the
sensitivity sweeps, and value-annotated heatmaps for attention matrices.
"""

from __future__ import annotations

import math
from xml.sax.saxutils import escape

__all__ = ["line_chart", "bar_chart", "heatmap"]

# A small colour cycle (Okabe-Ito, colour-blind safe).
PALETTE = ("#0072B2", "#E69F00", "#009E73", "#CC79A7",
           "#56B4E9", "#D55E00", "#F0E442", "#000000")

_FONT = 'font-family="Helvetica,Arial,sans-serif"'


def _header(width: int, height: int, title: str) -> list[str]:
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="20" text-anchor="middle" {_FONT} '
            f'font-size="14" font-weight="bold">{escape(title)}</text>'
        )
    return parts


def _nice_ticks(low: float, high: float, count: int = 5) -> list[float]:
    if high <= low:
        high = low + 1.0
    raw = (high - low) / max(count - 1, 1)
    magnitude = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * magnitude
        if step >= raw:
            break
    start = math.floor(low / step) * step
    ticks = []
    value = start
    while value <= high + 1e-12:
        if value >= low - 1e-12:
            ticks.append(round(value, 10))
        value += step
    return ticks or [low, high]


def line_chart(series: dict[str, list[tuple[float, float]]], title: str = "",
               x_label: str = "", y_label: str = "", width: int = 480,
               height: int = 320) -> str:
    """Multi-series line chart; ``series`` maps label → [(x, y), …]."""
    if not series or all(not pts for pts in series.values()):
        raise ValueError("line_chart needs at least one point")
    margin_l, margin_r, margin_t, margin_b = 60, 120, 40, 50
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b

    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi += 1.0
    if y_hi == y_lo:
        y_hi += 1.0
    pad = 0.05 * (y_hi - y_lo)
    y_lo, y_hi = y_lo - pad, y_hi + pad

    def sx(x):
        return margin_l + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y):
        return margin_t + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts = _header(width, height, title)
    # Axes + ticks.
    parts.append(f'<line x1="{margin_l}" y1="{margin_t}" x2="{margin_l}" '
                 f'y2="{margin_t + plot_h}" stroke="black"/>')
    parts.append(f'<line x1="{margin_l}" y1="{margin_t + plot_h}" '
                 f'x2="{margin_l + plot_w}" y2="{margin_t + plot_h}" stroke="black"/>')
    for tick in _nice_ticks(y_lo, y_hi):
        y = sy(tick)
        parts.append(f'<line x1="{margin_l - 4}" y1="{y}" x2="{margin_l + plot_w}" '
                     f'y2="{y}" stroke="#dddddd"/>')
        parts.append(f'<text x="{margin_l - 8}" y="{y + 4}" text-anchor="end" '
                     f'{_FONT} font-size="10">{tick:g}</text>')
    for tick in sorted(set(xs)):
        x = sx(tick)
        parts.append(f'<text x="{x}" y="{margin_t + plot_h + 16}" '
                     f'text-anchor="middle" {_FONT} font-size="10">{tick:g}</text>')
    if x_label:
        parts.append(f'<text x="{margin_l + plot_w / 2}" y="{height - 10}" '
                     f'text-anchor="middle" {_FONT} font-size="11">{escape(x_label)}</text>')
    if y_label:
        parts.append(f'<text x="16" y="{margin_t + plot_h / 2}" {_FONT} font-size="11" '
                     f'transform="rotate(-90 16 {margin_t + plot_h / 2})" '
                     f'text-anchor="middle">{escape(y_label)}</text>')

    for index, (label, points) in enumerate(series.items()):
        color = PALETTE[index % len(PALETTE)]
        points = sorted(points)
        path = " ".join(f"{'M' if i == 0 else 'L'}{sx(x):.1f},{sy(y):.1f}"
                        for i, (x, y) in enumerate(points))
        parts.append(f'<path d="{path}" fill="none" stroke="{color}" stroke-width="2"/>')
        for x, y in points:
            parts.append(f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3" fill="{color}"/>')
        legend_y = margin_t + 14 * index
        legend_x = margin_l + plot_w + 10
        parts.append(f'<rect x="{legend_x}" y="{legend_y}" width="10" height="10" '
                     f'fill="{color}"/>')
        parts.append(f'<text x="{legend_x + 14}" y="{legend_y + 9}" {_FONT} '
                     f'font-size="10">{escape(label)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def bar_chart(values: dict[str, float], title: str = "", y_label: str = "",
              width: int = 520, height: int = 320, log_scale: bool = False) -> str:
    """Vertical bar chart; optional log10 scaling for timing spans."""
    if not values:
        raise ValueError("bar_chart needs at least one bar")
    margin_l, margin_r, margin_t, margin_b = 60, 20, 40, 90
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b

    raw = list(values.values())
    if log_scale:
        floor = min(v for v in raw if v > 0) if any(v > 0 for v in raw) else 1e-6
        transformed = [math.log10(max(v, floor / 10)) for v in raw]
    else:
        transformed = raw
    t_lo = min(transformed + [0.0]) if not log_scale else min(transformed)
    t_hi = max(transformed)
    if t_hi == t_lo:
        t_hi += 1.0

    def sy(t):
        return margin_t + plot_h - (t - t_lo) / (t_hi - t_lo) * plot_h

    parts = _header(width, height, title)
    bar_w = plot_w / len(values) * 0.7
    gap = plot_w / len(values)
    for index, (label, value) in enumerate(values.items()):
        t = transformed[index]
        x = margin_l + index * gap + (gap - bar_w) / 2
        y = sy(t)
        parts.append(f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
                     f'height="{margin_t + plot_h - y:.1f}" '
                     f'fill="{PALETTE[index % len(PALETTE)]}"/>')
        parts.append(f'<text x="{x + bar_w / 2:.1f}" y="{y - 4:.1f}" '
                     f'text-anchor="middle" {_FONT} font-size="9">{value:.3g}</text>')
        label_x = x + bar_w / 2
        label_y = margin_t + plot_h + 12
        parts.append(f'<text x="{label_x:.1f}" y="{label_y}" {_FONT} font-size="10" '
                     f'transform="rotate(-35 {label_x:.1f} {label_y})" '
                     f'text-anchor="end">{escape(label)}</text>')
    parts.append(f'<line x1="{margin_l}" y1="{margin_t + plot_h}" '
                 f'x2="{margin_l + plot_w}" y2="{margin_t + plot_h}" stroke="black"/>')
    if y_label:
        suffix = " (log scale)" if log_scale else ""
        parts.append(f'<text x="16" y="{margin_t + plot_h / 2}" {_FONT} font-size="11" '
                     f'transform="rotate(-90 16 {margin_t + plot_h / 2})" '
                     f'text-anchor="middle">{escape(y_label + suffix)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def heatmap(matrix, row_labels: list[str] | None = None,
            col_labels: list[str] | None = None, title: str = "",
            cell: int = 26) -> str:
    """Value-shaded heatmap (dark = high), the Fig. 9 attention rendering."""
    rows = len(matrix)
    cols = len(matrix[0]) if rows else 0
    if rows == 0 or cols == 0:
        raise ValueError("heatmap needs a non-empty matrix")
    label_w = 90 if row_labels else 20
    label_h = 70 if col_labels else 20
    width = label_w + cols * cell + 20
    height = 40 + label_h + rows * cell + 10

    flat = [v for row in matrix for v in row]
    lo, hi = min(flat), max(flat)
    span = (hi - lo) or 1.0

    parts = _header(width, height, title)
    top = 40 + label_h
    for r in range(rows):
        for c in range(cols):
            value = (matrix[r][c] - lo) / span
            shade = int(255 - value * 200)
            x = label_w + c * cell
            y = top + r * cell
            parts.append(f'<rect x="{x}" y="{y}" width="{cell}" height="{cell}" '
                         f'fill="rgb({shade},{shade},255)" stroke="#cccccc"/>')
    if row_labels:
        for r, label in enumerate(row_labels[:rows]):
            parts.append(f'<text x="{label_w - 6}" y="{top + r * cell + cell / 2 + 4}" '
                         f'text-anchor="end" {_FONT} font-size="10">{escape(str(label))}</text>')
    if col_labels:
        for c, label in enumerate(col_labels[:cols]):
            x = label_w + c * cell + cell / 2
            y = top - 6
            parts.append(f'<text x="{x}" y="{y}" {_FONT} font-size="10" '
                         f'transform="rotate(-60 {x} {y})">{escape(str(label))}</text>')
    parts.append("</svg>")
    return "\n".join(parts)
