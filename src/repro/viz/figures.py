"""Per-figure SVG rendering from the experiment runner's row format.

Each function takes the same data structure the corresponding
``repro.experiments.runner`` call returns and produces the paper figure's
visual form as an SVG string (saved by the benchmarks to ``results/``).
"""

from __future__ import annotations

from .svg import bar_chart, heatmap, line_chart

__all__ = ["fig6_svg", "fig7_svg", "fig8_svg", "fig9_svg"]

_SCENARIO_LABELS = {"user": "UC", "item": "IC", "both": "U&I C"}


def fig6_svg(rows: list[dict]) -> str:
    """Fig. 6: total test time per method (summed over datasets), log scale."""
    totals: dict[str, float] = {}
    for row in rows:
        totals[row["model"]] = totals.get(row["model"], 0.0) + row["test_seconds"]
    return bar_chart(totals, title="Fig. 6 — total test time",
                     y_label="seconds", log_scale=True)


def fig7_svg(rows: list[dict], sweep: str = "num_him_blocks") -> str:
    """Fig. 7: metric@5 vs swept value, one line per scenario."""
    series: dict[str, list[tuple[float, float]]] = {}
    for row in rows:
        if row.get("sweep") != sweep:
            continue
        label = _SCENARIO_LABELS.get(row["scenario"], row["scenario"])
        series.setdefault(label, []).append((float(row["value"]), row["ndcg"]))
    x_label = "HIM blocks" if sweep == "num_him_blocks" else "context size"
    return line_chart(series, title=f"Fig. 7 — sensitivity ({x_label})",
                      x_label=x_label, y_label="NDCG@5")


def fig8_svg(rows: list[dict]) -> str:
    """Fig. 8: NDCG@5 per sampler per scenario as grouped bars."""
    values: dict[str, float] = {}
    for row in rows:
        label = (f"{row['sampler']}/"
                 f"{_SCENARIO_LABELS.get(row['scenario'], row['scenario'])}")
        values[label] = row["ndcg"]
    return bar_chart(values, title="Fig. 8 — sampling strategies",
                     y_label="NDCG@5")


def fig9_svg(case: dict, which: str = "attr") -> str:
    """Fig. 9: one attention matrix as a heatmap."""
    matrix = case["attention"][which]
    if which == "user":
        labels = [f"u{u}" for u in case["users"]]
    elif which == "item":
        labels = [f"i{i}" for i in case["items"]]
    else:
        labels = list(case["attribute_names"])
    titles = {"user": "MBU — attention between users",
              "item": "MBI — attention between items",
              "attr": "MBA — attention between attributes"}
    return heatmap(matrix.tolist(), row_labels=labels, col_labels=labels,
                   title=f"Fig. 9 — {titles[which]}")
