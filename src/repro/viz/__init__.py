"""``repro.viz`` — dependency-free SVG rendering of the paper's figures."""

from .figures import fig6_svg, fig7_svg, fig8_svg, fig9_svg
from .svg import bar_chart, heatmap, line_chart

__all__ = [
    "line_chart",
    "bar_chart",
    "heatmap",
    "fig6_svg",
    "fig7_svg",
    "fig8_svg",
    "fig9_svg",
]
