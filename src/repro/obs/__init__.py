"""``repro.obs`` — observability: spans, metrics, run logging, reports.

The telemetry layer of the reproduction.  Four pieces, all passive (they
never touch model, optimiser, or RNG state, so trajectories are
bit-identical with telemetry on or off):

* :mod:`~repro.obs.spans` — hierarchical wall-time profiling
  (``with obs.span("train_step/forward"): ...``), off by default and
  near-free when off.
* :mod:`~repro.obs.metrics` — a registry of counters, gauges, and
  bounded-memory streaming histograms (p50/p90/p99).
* :mod:`~repro.obs.recorder` / :mod:`~repro.obs.sinks` — structured JSONL
  run logs plus the trainer observer API (console, recorder, and metrics
  sinks).
* :mod:`~repro.obs.ophooks` — optional per-op timing over the
  ``nn.functional`` kernels, attributing fused vs. reference kernel time
  to the enclosing span.
* :mod:`~repro.obs.report` — renders any of the above as ``results/``-style
  text tables.

The serve-tier plane adds four more, all equally passive:

* :mod:`~repro.obs.trace` — per-request trace ids and stage-attributed
  timings (queue wait → batch form → assemble → pack → forward →
  respond) in a bounded ring buffer, with an optional JSONL sink.
* :mod:`~repro.obs.windows` — rolling time-windowed counters/histograms
  so p50/p99/rates are reported over the last N seconds, not since boot.
* :mod:`~repro.obs.slo` — declarative SLO rules (p99 latency, shed rate,
  cache hit rate) evaluated into ok/warn/breach over burn-rate style
  short/long windows.
* :mod:`~repro.obs.export` — a drain-aware background exporter thread
  snapshotting a registry (plus health/trace sources) to JSONL.

See ``docs/observability.md`` for a walkthrough and overhead numbers.
"""

from . import export, ophooks, report, slo, trace, windows
from .export import TelemetryExporter
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .recorder import RunRecorder, jsonable, read_run
from .report import (
    render_metrics_table,
    render_run_report,
    render_slo_table,
    render_span_table,
    render_step_table,
    render_trace_table,
)
from .slo import (
    SLORule,
    SLOStatus,
    default_online_rules,
    default_serve_rules,
    evaluate_slos,
    worst_state,
)
from .trace import TRACE_STAGES, RequestTrace, Tracer
from .windows import WindowedCounter, WindowedHistogram
from .sinks import (
    ConsoleSink,
    FitSummary,
    MetricsSink,
    RecorderSink,
    StepEvent,
    TrainerObserver,
    ValidationEvent,
)
from .spans import (
    SpanStats,
    current_span_path,
    enable_profiling,
    profiling,
    profiling_enabled,
    record_span,
    reset_spans,
    span,
    span_totals,
)

__all__ = [
    # spans
    "span",
    "enable_profiling",
    "profiling_enabled",
    "profiling",
    "current_span_path",
    "record_span",
    "span_totals",
    "reset_spans",
    "SpanStats",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    # recorder
    "RunRecorder",
    "read_run",
    "jsonable",
    # observer API / sinks
    "TrainerObserver",
    "StepEvent",
    "ValidationEvent",
    "FitSummary",
    "ConsoleSink",
    "RecorderSink",
    "MetricsSink",
    # op hooks + reports
    "ophooks",
    "report",
    "render_run_report",
    "render_step_table",
    "render_span_table",
    "render_metrics_table",
    # serve-tier plane: traces, windows, SLOs, export
    "TRACE_STAGES",
    "RequestTrace",
    "Tracer",
    "WindowedCounter",
    "WindowedHistogram",
    "SLORule",
    "SLOStatus",
    "evaluate_slos",
    "worst_state",
    "default_serve_rules",
    "default_online_rules",
    "TelemetryExporter",
    "render_trace_table",
    "render_slo_table",
]
