"""Rolling time-windowed counters and histograms.

The plain :class:`~repro.obs.metrics.Counter` / ``Histogram`` instruments
are *lifetime-cumulative*: ``p99`` since process start cannot show a
regression that began two minutes ago.  The windowed instruments here
report over **the last N seconds** instead, by keeping a ring of
fixed-duration *slices* (each slice is a plain log-bucket
:class:`~repro.obs.metrics.Histogram`, or a float for counters) indexed by
``floor(now / slice_seconds)``.  Slices older than the window are dropped
lazily on access, so memory stays bounded at ``num_slices`` regardless of
traffic.

Both instruments answer queries over *sub*-windows too
(``total(window_seconds=10)``, ``quantile(0.99, window_seconds=10)``),
rounded up to whole slices — that is what burn-rate style SLO evaluation
(:mod:`repro.obs.slo`) uses to compare a short recent window against the
long one without keeping two copies of every instrument.

Windowed histograms aggregate their live slices through
:meth:`Histogram.merge`, so quantiles over the window keep full bucket
resolution.  The clock is injectable everywhere; tests drive rotation with
a fake clock.
"""

from __future__ import annotations

import math
import threading
import time

from .metrics import Histogram

__all__ = ["WindowedCounter", "WindowedHistogram"]


def _validate(window_seconds: float, num_slices: int) -> float:
    if window_seconds <= 0:
        raise ValueError("window_seconds must be positive")
    if num_slices < 1:
        raise ValueError("num_slices must be >= 1")
    return window_seconds / num_slices


class WindowedCounter:
    """An event count over the trailing ``window_seconds``.

    ``total()`` sums the live slices; ``rate()`` divides by the covered
    wall time (the window once it has filled, the instrument's age before
    that, so early rates are not diluted by time that never happened).
    """

    __slots__ = ("name", "window_seconds", "num_slices", "_slice_seconds",
                 "_slices", "_clock", "_created_at", "_lock")

    def __init__(self, name: str, window_seconds: float = 60.0,
                 num_slices: int = 6, clock=time.monotonic):
        self.name = name
        self.window_seconds = float(window_seconds)
        self.num_slices = int(num_slices)
        self._slice_seconds = _validate(self.window_seconds, self.num_slices)
        self._slices: dict[int, float] = {}
        self._clock = clock
        self._created_at = clock()
        self._lock = threading.Lock()

    def _index(self, now: float) -> int:
        return int(now // self._slice_seconds)

    def _prune(self, current: int) -> None:
        floor = current - self.num_slices
        for index in [i for i in self._slices if i <= floor]:
            del self._slices[index]

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("windowed counters only increase")
        now = self._clock()
        with self._lock:
            index = self._index(now)
            self._slices[index] = self._slices.get(index, 0.0) + amount
            self._prune(index)

    def _live(self, window_seconds: float | None) -> tuple[list[float], float]:
        """(live slice values, covered seconds) for one query window."""
        now = self._clock()
        current = self._index(now)
        if window_seconds is None:
            span = self.num_slices
        else:
            span = min(self.num_slices,
                       max(1, math.ceil(window_seconds / self._slice_seconds)))
        values = [v for i, v in self._slices.items() if i > current - span]
        covered = min(span * self._slice_seconds, max(now - self._created_at,
                                                      self._slice_seconds))
        return values, covered

    def total(self, window_seconds: float | None = None) -> float:
        with self._lock:
            values, _ = self._live(window_seconds)
            return sum(values)

    def rate(self, window_seconds: float | None = None) -> float:
        """Events per second over the covered window."""
        with self._lock:
            values, covered = self._live(window_seconds)
            return sum(values) / covered

    def snapshot(self) -> dict:
        return {"type": "windowed_counter",
                "window_seconds": self.window_seconds,
                "total": self.total(), "rate": self.rate()}


class WindowedHistogram:
    """A streaming histogram over the trailing ``window_seconds``.

    Each slice is a full log-bucket :class:`Histogram`; queries merge the
    live slices (lossless — see :meth:`Histogram.merge`) so windowed
    p50/p90/p99 carry the same bounded relative error as the cumulative
    instrument.
    """

    __slots__ = ("name", "window_seconds", "num_slices", "growth",
                 "_slice_seconds", "_slices", "_clock", "_lock")

    def __init__(self, name: str, window_seconds: float = 60.0,
                 num_slices: int = 6, growth: float = 1.05,
                 clock=time.monotonic):
        self.name = name
        self.window_seconds = float(window_seconds)
        self.num_slices = int(num_slices)
        self.growth = growth
        self._slice_seconds = _validate(self.window_seconds, self.num_slices)
        self._slices: dict[int, Histogram] = {}
        self._clock = clock
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        now = self._clock()
        with self._lock:
            index = int(now // self._slice_seconds)
            slice_ = self._slices.get(index)
            if slice_ is None:
                slice_ = self._slices[index] = Histogram(
                    f"{self.name}[{index}]", growth=self.growth)
                floor = index - self.num_slices
                for stale in [i for i in self._slices if i <= floor]:
                    del self._slices[stale]
        slice_.observe(value)

    def merged(self, window_seconds: float | None = None) -> Histogram:
        """A fresh cumulative :class:`Histogram` of the live window."""
        now = self._clock()
        current = int(now // self._slice_seconds)
        if window_seconds is None:
            span = self.num_slices
        else:
            span = min(self.num_slices,
                       max(1, math.ceil(window_seconds / self._slice_seconds)))
        out = Histogram(self.name, growth=self.growth)
        with self._lock:
            live = [h for i, h in self._slices.items() if i > current - span]
        for histogram in live:
            out.merge(histogram)
        return out

    def count(self, window_seconds: float | None = None) -> int:
        return self.merged(window_seconds).count

    def quantile(self, q: float, window_seconds: float | None = None) -> float:
        return self.merged(window_seconds).quantile(q)

    def percentiles(self, window_seconds: float | None = None) -> dict:
        return self.merged(window_seconds).percentiles()

    def snapshot(self) -> dict:
        merged = self.merged()
        out = {"type": "windowed_histogram",
               "window_seconds": self.window_seconds,
               "count": merged.count, "sum": merged.sum,
               "min": merged.min, "max": merged.max, "mean": merged.mean}
        out.update(merged.percentiles())
        return out
