"""Render telemetry (run JSONL files, span totals, metrics) as text tables.

The output follows the fixed-width ``" | "``-joined column style of the
paper tables in ``results/`` (see :mod:`repro.experiments.tables`), so run
reports drop straight into the same artifact directory.
"""

from __future__ import annotations

import os

from .metrics import MetricsRegistry, get_registry
from .recorder import read_run
from .spans import SpanStats, span_totals

__all__ = [
    "render_run_report",
    "render_step_table",
    "render_span_table",
    "render_metrics_table",
    "render_trace_table",
    "render_slo_table",
]


def _thin(rows: list[dict], max_rows: int) -> list[dict]:
    """Evenly subsample ``rows`` down to ``max_rows`` (keeping the last)."""
    if len(rows) <= max_rows:
        return rows
    stride = (len(rows) - 1) / (max_rows - 1)
    picked = [rows[round(i * stride)] for i in range(max_rows - 1)]
    return picked + [rows[-1]]


def render_step_table(records: list[dict], max_rows: int = 24) -> str:
    """Per-step trajectory table (loss / grad norm / LR / timing)."""
    steps = [r for r in records if r.get("type") == "step"]
    if not steps:
        return "(no step records)"
    header = ["Step", "Loss", "|grad|", "LR", "ms/step", "Masked"]
    lines = [" | ".join(f"{h:>10s}" for h in header)]
    lines.append("-" * len(lines[0]))
    for r in _thin(steps, max_rows):
        lines.append(" | ".join([
            f"{r.get('step', 0):>10d}",
            f"{r.get('loss', float('nan')):>10.4f}",
            f"{r.get('grad_norm', float('nan')):>10.3f}",
            f"{r.get('lr', float('nan')):>10.2e}",
            f"{r.get('step_seconds', 0.0) * 1e3:>10.1f}",
            f"{r.get('masked_cells', 0):>10d}",
        ]))
    if len(steps) > max_rows:
        lines.append(f"({len(steps)} steps total; showing {max_rows})")
    return "\n".join(lines)


def _validation_lines(records: list[dict]) -> list[str]:
    checks = [r for r in records if r.get("type") == "validation"]
    if not checks:
        return []
    best = min(r["loss"] for r in checks)
    return [
        f"validation checks: {len(checks)}"
        f"   best {best:.4f}"
        f"   last {checks[-1]['loss']:.4f}"
    ]


def render_run_report(run: str | os.PathLike | list[dict],
                      max_rows: int = 24) -> str:
    """Full text report for one run: header, step table, summary."""
    records = run if isinstance(run, list) else read_run(run)
    if not records:
        return "(empty run)"
    lines: list[str] = []
    start = next((r for r in records if r.get("type") == "run_start"), None)
    if start is not None:
        lines.append(f"run {start.get('run_id', '?')}")
        config = start.get("config")
        if isinstance(config, dict):
            knobs = ", ".join(f"{k}={v}" for k, v in sorted(config.items())
                              if isinstance(v, (int, float, str, bool)))
            if knobs:
                lines.append(f"config: {knobs}")
        lines.append("")
    lines.append(render_step_table(records, max_rows=max_rows))
    validation = _validation_lines(records)
    if validation:
        lines.append("")
        lines.extend(validation)
    summary = next((r for r in records if r.get("type") == "summary"), None)
    if summary is not None:
        lines.append("")
        parts = []
        if "steps_run" in summary:
            parts.append(f"{summary['steps_run']}/{summary.get('total_steps', '?')} steps")
        if summary.get("stopped_early"):
            parts.append("early stop")
        if summary.get("final_loss") is not None:
            parts.append(f"final loss {summary['final_loss']:.4f}")
        if summary.get("wall_seconds") is not None:
            parts.append(f"{summary['wall_seconds']:.2f}s")
        if summary.get("steps_per_second") is not None:
            parts.append(f"{summary['steps_per_second']:.2f} steps/s")
        if summary.get("aborted"):
            parts.append(f"ABORTED ({summary.get('error')})")
        lines.append("summary: " + "  ".join(parts) if parts else "summary: (empty)")
    return "\n".join(lines)


def render_span_table(totals: dict[str, SpanStats] | None = None,
                      min_total_seconds: float = 0.0) -> str:
    """Aggregated span wall-times, one row per path, children indented."""
    totals = span_totals() if totals is None else totals
    rows = [s for s in totals.values() if s.total_seconds >= min_total_seconds]
    if not rows:
        return "(no spans recorded)"
    rows.sort(key=lambda s: s.path)
    name_width = max(24, max(len(s.path) for s in rows) + 2)
    header = (f"{'Span':<{name_width}s} | {'Count':>8s} | {'Total s':>10s}"
              f" | {'Mean ms':>10s} | {'Min ms':>10s} | {'Max ms':>10s}")
    lines = [header, "-" * len(header)]
    for s in rows:
        depth = s.path.count("/")
        label = "  " * depth + s.path.rsplit("/", 1)[-1]
        lines.append(
            f"{label:<{name_width}s} | {s.count:>8d} | {s.total_seconds:>10.3f}"
            f" | {s.mean_seconds * 1e3:>10.2f} | {s.min_seconds * 1e3:>10.2f}"
            f" | {s.max_seconds * 1e3:>10.2f}"
        )
    return "\n".join(lines)


def render_metrics_table(registry: MetricsRegistry | None = None) -> str:
    """Every instrument in a registry, one row per metric.

    Windowed instruments (:mod:`repro.obs.windows`) render like their
    cumulative counterparts — a windowed histogram shows its in-window
    count/quantiles, a windowed counter its in-window total — with the
    kind column marking the window (``w-counter`` / ``w-histogram``).
    """
    registry = registry if registry is not None else get_registry()
    snapshot = registry.snapshot()
    if not snapshot:
        return "(no metrics recorded)"
    kinds = {"windowed_counter": "w-counter",
             "windowed_histogram": "w-histogram"}
    name_width = max(24, max(len(n) for n in snapshot) + 2)
    kind_width = max(9, max(len(kinds.get(s["type"], s["type"]))
                            for s in snapshot.values()))
    header = (f"{'Metric':<{name_width}s} | {'Kind':>{kind_width}s}"
              f" | {'Value/Count':>12s}"
              f" | {'Mean':>10s} | {'p50':>10s} | {'p90':>10s} | {'p99':>10s}")
    lines = [header, "-" * len(header)]
    for name, snap in snapshot.items():
        kind = kinds.get(snap["type"], snap["type"])
        if snap["type"] in ("histogram", "windowed_histogram"):
            lines.append(
                f"{name:<{name_width}s} | {kind:>{kind_width}s}"
                f" | {snap['count']:>12d}"
                f" | {snap['mean']:>10.4g} | {snap['p50']:>10.4g}"
                f" | {snap['p90']:>10.4g} | {snap['p99']:>10.4g}"
            )
        else:
            value = (snap["total"] if snap["type"] == "windowed_counter"
                     else snap["value"])
            lines.append(
                f"{name:<{name_width}s} | {kind:>{kind_width}s}"
                f" | {value:>12.6g}"
                f" | {'-':>10s} | {'-':>10s} | {'-':>10s} | {'-':>10s}"
            )
    return "\n".join(lines)


def render_trace_table(stage_totals: dict[str, dict]) -> str:
    """Per-stage latency attribution from a tracer's buffered traces.

    One row per pipeline stage (plus the ``total`` pseudo-stage), with
    each stage's share of total traced time — the serve tier's "where does
    the time go" table.  Accepts :meth:`repro.obs.Tracer.stage_totals`
    output.
    """
    rows = [(stage, stats) for stage, stats in stage_totals.items()
            if stats.get("count")]
    if not rows:
        return "(no traces recorded)"
    total_seconds = sum(stats["total_seconds"] for stage, stats in rows
                        if stage != "total") or 1.0
    header = (f"{'Stage':<12s} | {'Count':>8s} | {'Total s':>10s}"
              f" | {'Mean ms':>10s} | {'Max ms':>10s} | {'Share':>7s}")
    lines = [header, "-" * len(header)]
    for stage, stats in rows:
        share = ("" if stage == "total"
                 else f"{stats['total_seconds'] / total_seconds * 100:6.1f}%")
        lines.append(
            f"{stage:<12s} | {stats['count']:>8d}"
            f" | {stats['total_seconds']:>10.3f}"
            f" | {stats['mean_seconds'] * 1e3:>10.2f}"
            f" | {stats['max_seconds'] * 1e3:>10.2f} | {share:>7s}"
        )
    return "\n".join(lines)


def render_slo_table(statuses) -> str:
    """SLO rule states, one row per rule (short vs long window values).

    Accepts :class:`repro.obs.SLOStatus` objects or their ``snapshot()``
    dicts — e.g. ``health()["slos"]`` straight from a service.
    """
    snaps = [s.snapshot() if hasattr(s, "snapshot") else s for s in statuses]
    if not snaps:
        return "(no slo rules)"
    name_width = max(16, max(len(s["name"]) for s in snaps) + 2)

    def fmt(value):
        return "-" if value is None else f"{value:.4g}"

    header = (f"{'SLO':<{name_width}s} | {'State':>8s} | {'Short':>10s}"
              f" | {'Long':>10s} | {'Threshold':>10s}")
    lines = [header, "-" * len(header)]
    for snap in snaps:
        bound = ("<= " if snap["objective"] == "max" else ">= ")
        lines.append(
            f"{snap['name']:<{name_width}s} | {snap['state']:>8s}"
            f" | {fmt(snap['short_value']):>10s}"
            f" | {fmt(snap['long_value']):>10s}"
            f" | {bound + format(snap['threshold'], '.4g'):>10s}"
        )
    return "\n".join(lines)
