"""Per-request tracing: stage-attributed timings with a bounded buffer.

A *trace* follows one serve request through the pipeline's stages —

``enqueue`` (queue wait) → ``batch_form`` (waiting for batch-mates) →
``assemble`` (context sampling + encode) → ``pack`` (padded stacked
execution, when a mixed-shape bucket runs the packed path) →
``forward`` (model execution outside the packed path) → ``respond``
(result fan-out)

— recording the wall time spent in each.  The :class:`Tracer` hands out
monotonically increasing trace ids, keeps the most recent completed traces
in a fixed-size ring buffer (bounded memory, like every other ``obs``
instrument), and can mirror every completed trace to a JSONL sink that
reuses :class:`~repro.obs.recorder.RunRecorder`'s append-only format — so
trace files are readable by :func:`~repro.obs.recorder.read_run` and
tolerate crashes mid-write.

Tracing is **passive**: traces only read clocks and copy floats, never
model, optimiser, or RNG state, so predictions are bit-identical with
tracing on or off (asserted end-to-end by the serve benchmark).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque

from .recorder import RunRecorder

__all__ = ["TRACE_STAGES", "RequestTrace", "Tracer"]

# Pipeline stages in order; every completed trace reports a (possibly
# zero) duration for each.
TRACE_STAGES = ("enqueue", "batch_form", "assemble", "pack", "forward",
                "respond")


class RequestTrace:
    """One in-flight request's stage timings (built up, then finished)."""

    __slots__ = ("trace_id", "started_at", "stages")

    def __init__(self, trace_id: int, started_at: float):
        self.trace_id = trace_id
        self.started_at = started_at
        self.stages: dict[str, float] = {}

    def mark(self, stage: str, seconds: float) -> None:
        """Record the wall time spent in one stage (clamped at >= 0)."""
        self.stages[stage] = max(float(seconds), 0.0)


class Tracer:
    """Issues trace ids and collects completed traces.

    ``capacity`` bounds the in-memory ring buffer; ``sink_path`` optionally
    mirrors every completed trace to a JSONL file (one ``trace`` record per
    request, ``run_start``/``summary`` framing from :class:`RunRecorder`).
    The tracer owns the sink and closes it in :meth:`close`.
    """

    def __init__(self, capacity: int = 256,
                 sink_path: str | os.PathLike | None = None,
                 clock=time.monotonic):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._completed = 0
        self._sink = (RunRecorder(sink_path, config={"capacity": capacity})
                      if sink_path is not None else None)

    def begin(self, started_at: float | None = None) -> RequestTrace:
        """Open a trace for one request (id assignment is the only state)."""
        at = self._clock() if started_at is None else started_at
        return RequestTrace(next(self._ids), at)

    def finish(self, trace: RequestTrace, total_seconds: float) -> dict:
        """Fold a completed trace into the ring (and the sink, if any)."""
        record = {
            "trace_id": trace.trace_id,
            "started_at": trace.started_at,
            "total_seconds": max(float(total_seconds), 0.0),
            "stages": {stage: trace.stages.get(stage, 0.0)
                       for stage in TRACE_STAGES},
        }
        with self._lock:
            self._ring.append(record)
            self._completed += 1
            if self._sink is not None:
                self._sink.record("trace", **record)
        return record

    def recent(self, n: int | None = None) -> list[dict]:
        """The most recent completed traces, oldest first."""
        with self._lock:
            traces = list(self._ring)
        return traces if n is None else traces[-n:]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def completed(self) -> int:
        """Total traces finished over the tracer's lifetime."""
        with self._lock:
            return self._completed

    def stage_totals(self) -> dict[str, dict]:
        """Aggregated stage timings over the buffered traces.

        One entry per stage: ``count`` / ``total_seconds`` /
        ``mean_seconds`` / ``max_seconds``, plus a ``total`` pseudo-stage
        for end-to-end latency.  Computed from the ring buffer, so it
        reflects the most recent ``capacity`` requests.
        """
        with self._lock:
            traces = list(self._ring)
        out: dict[str, dict] = {}
        for stage in (*TRACE_STAGES, "total"):
            values = [t["total_seconds"] if stage == "total"
                      else t["stages"][stage] for t in traces]
            if not values:
                out[stage] = {"count": 0, "total_seconds": 0.0,
                              "mean_seconds": 0.0, "max_seconds": 0.0}
                continue
            total = sum(values)
            out[stage] = {"count": len(values), "total_seconds": total,
                          "mean_seconds": total / len(values),
                          "max_seconds": max(values)}
        return out

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def close(self) -> None:
        """Finalize the sink (a no-op without one, or when already closed)."""
        with self._lock:
            if self._sink is not None and not self._sink.closed:
                self._sink.finalize(traces_completed=self._completed)
            self._sink = None
