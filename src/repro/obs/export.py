"""Background telemetry export: periodic JSONL snapshots of a registry.

A :class:`TelemetryExporter` runs one daemon thread (built on the shared
:class:`repro.concurrency.WorkerPool`) that snapshots a
:class:`~repro.obs.metrics.MetricsRegistry` — plus any extra ``sources``
(callables returning JSON-able values, e.g. a service's ``health`` or a
tracer's ``stage_totals``) — to an append-only JSONL file on a fixed
interval.  The file reuses :class:`~repro.obs.recorder.RunRecorder`'s
format: a ``run_start`` header, one ``export`` record per tick, and a
closing ``summary``, all readable by :func:`~repro.obs.recorder.read_run`.

Shutdown is **drain-aware**: :meth:`close` stops the thread, then writes
one final snapshot before finalizing, so the telemetry produced between
the last tick and shutdown is never lost.  A source that raises does not
kill the exporter — the error is counted, recorded in that tick's record,
and the remaining sources still export.
"""

from __future__ import annotations

import os
import threading
import time

from ..concurrency import WorkerPool
from .metrics import MetricsRegistry
from .recorder import RunRecorder, jsonable

__all__ = ["TelemetryExporter"]


class TelemetryExporter:
    """Periodic JSONL snapshots of metrics (and friends), in the background.

    Parameters
    ----------
    path:
        JSONL output file (parent directories are created).
    registry:
        The metrics registry to snapshot each tick (``None`` skips the
        ``metrics`` field — sources may carry everything).
    interval_seconds:
        Tick period; the thread wakes early when closed.
    sources:
        Extra named snapshot callables, serialised with
        :func:`~repro.obs.recorder.jsonable` each tick.
    """

    def __init__(self, path: str | os.PathLike,
                 registry: MetricsRegistry | None = None,
                 interval_seconds: float = 5.0,
                 sources: dict | None = None,
                 run_id: str | None = None,
                 clock=time.monotonic):
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.interval_seconds = float(interval_seconds)
        self._registry = registry
        self._sources = dict(sources or {})
        self._clock = clock
        self._lock = threading.Lock()
        self._num_exports = 0
        self._num_errors = 0
        self._closed = False
        self._recorder = RunRecorder(
            path, run_id=run_id,
            config={"interval_seconds": self.interval_seconds,
                    "sources": sorted(self._sources)})
        self._pool = WorkerPool(self._loop, 1, name="telemetry-export")
        self._pool.start()

    def _loop(self, stop_event) -> bool | None:
        if stop_event.wait(self.interval_seconds):
            return False  # closing: the final snapshot is written by close()
        self.export_once()
        return None

    def export_once(self) -> dict:
        """Write one snapshot record now (also usable without the thread)."""
        record: dict = {"at": self._clock()}
        if self._registry is not None:
            record["metrics"] = self._registry.snapshot()
        errors = {}
        for name, source in self._sources.items():
            try:
                record[name] = jsonable(source())
            except Exception as error:  # keep exporting the healthy sources
                errors[name] = repr(error)
        if errors:
            record["source_errors"] = errors
        with self._lock:
            if self._closed:
                return record  # raced with close(); drop silently
            record["sequence"] = self._num_exports
            self._recorder.record("export", **record)
            self._num_exports += 1
            self._num_errors += len(errors)
        return record

    @property
    def num_exports(self) -> int:
        with self._lock:
            return self._num_exports

    @property
    def path(self):
        return self._recorder.path

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, timeout: float | None = 10.0) -> None:
        """Stop the thread, write a final snapshot, and finalize the file."""
        if self._closed:
            return
        self._pool.close(timeout)
        self.export_once()  # drain: capture everything since the last tick
        with self._lock:
            self._closed = True
            self._recorder.finalize(num_exports=self._num_exports,
                                    num_source_errors=self._num_errors)

    def __enter__(self) -> "TelemetryExporter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
