"""Optional per-op timing hooks over the ``repro.nn.functional`` kernels.

:func:`instrument` rebinds the hot ``nn.functional`` ops to timing wrappers
that attribute each call's wall time to the current profiling span (see
:mod:`repro.obs.spans`) under an ``op/<name>[fused|ref]`` leaf — so a span
report shows, e.g., how much of ``train_step/forward`` was spent inside
``layer_norm`` *and* whether the fused or the decomposed reference kernel
ran.  :func:`uninstrument` restores the original functions; while
uninstrumented (the default) the substrate carries **zero** added cost —
the ops are the very same function objects the module shipped with.

Every call site in the repo reaches these ops through module-attribute
access (``from . import functional as F; F.linear(...)``), which is what
makes rebinding sufficient.  Code that froze a direct reference with
``from repro.nn.functional import linear`` before :func:`instrument` keeps
the unwrapped op — fine for telemetry, which is best-effort by design.
"""

from __future__ import annotations

import functools
import time

from ..nn import functional as F
from . import spans

__all__ = [
    "HOT_OPS",
    "instrument",
    "uninstrument",
    "instrumented",
    "op_hooks",
]

# The single-autograd-node kernels of the HIRE hot path plus the loss —
# the ops whose fused-vs-reference split PR 1 benchmarked.
HOT_OPS = (
    "linear",
    "layer_norm",
    "gelu",
    "softmax",
    "scaled_dot_product_attention",
    "multi_head_attention_qkv",
    "embedding_lookup",
    "masked_mse_loss",
)

_ORIGINALS: dict[str, object] = {}


def _wrap(name: str, op):
    @functools.wraps(op)
    def timed(*args, **kwargs):
        start = time.perf_counter()
        try:
            return op(*args, **kwargs)
        finally:
            elapsed = time.perf_counter() - start
            mode = "fused" if F.fused_kernels_enabled() else "ref"
            parent = spans.current_span_path()
            leaf = f"op/{name}[{mode}]"
            spans.record_span(f"{parent}/{leaf}" if parent else leaf, elapsed)

    timed.__wrapped_op__ = op
    return timed


def instrument(ops: tuple[str, ...] = HOT_OPS) -> None:
    """Rebind the named ``nn.functional`` ops to timing wrappers."""
    for name in ops:
        if name in _ORIGINALS:
            continue  # already instrumented
        op = getattr(F, name)
        _ORIGINALS[name] = op
        setattr(F, name, _wrap(name, op))


def uninstrument() -> None:
    """Restore every instrumented op to its original function object."""
    while _ORIGINALS:
        name, op = _ORIGINALS.popitem()
        setattr(F, name, op)


def instrumented() -> bool:
    return bool(_ORIGINALS)


class op_hooks:
    """Context manager scoping :func:`instrument` to a block."""

    def __init__(self, ops: tuple[str, ...] = HOT_OPS):
        self._ops = ops

    def __enter__(self):
        self._was_instrumented = instrumented()
        if not self._was_instrumented:
            instrument(self._ops)
        return self

    def __exit__(self, *exc):
        if not self._was_instrumented:
            uninstrument()
        return False
