"""Declarative SLO rules evaluated into ok / warn / breach.

An :class:`SLORule` names a *probe* — a scalar health signal such as
windowed p99 latency, shed rate, or cache hit rate — and a threshold it
must stay under (``objective="max"``) or over (``objective="min"``).
Rules are evaluated against **two windows** of the same probe, burn-rate
style: a short window (is it bad *right now*?) and a long window (has it
been bad *long enough to matter*?).

* **breach** — every window with data violates the threshold: the budget
  is burning now and has been for the long window.
* **warn** — some window violates the threshold (a fast burn that the
  long window has not confirmed, or a past burn the short window shows
  as recovered), or any window is inside the warn margin
  (``warn_ratio`` of the budget for ``max`` rules, its reciprocal for
  ``min`` rules).
* **ok** — every window with data is comfortably inside the budget.
* **no_data** — no window has data (an idle service breaches nothing).

The evaluator is pure — probes in, statuses out — so it is trivially
testable with fake values; :meth:`repro.serve.PredictionService.health`
supplies real windowed probes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SLORule",
    "SLOStatus",
    "evaluate_slos",
    "worst_state",
    "default_serve_rules",
    "default_online_rules",
]

# Severity order for aggregation; no_data never escalates overall state.
_SEVERITY = {"ok": 0, "no_data": 0, "warn": 1, "breach": 2}


@dataclass(frozen=True)
class SLORule:
    """One objective over one probe.

    ``objective="max"``: the probe must stay **at or below** ``threshold``
    (latency, shed rate).  ``objective="min"``: the probe must stay **at
    or above** it (cache hit rate).  ``warn_ratio`` sets the early-warning
    margin as a fraction of the budget (0.9 → warn within 10 % of it).
    """

    name: str
    probe: str
    objective: str
    threshold: float
    warn_ratio: float = 0.9
    description: str = ""

    def __post_init__(self):
        if self.objective not in ("max", "min"):
            raise ValueError("objective must be 'max' or 'min'")
        if not 0.0 < self.warn_ratio <= 1.0:
            raise ValueError("warn_ratio must be in (0, 1]")

    def _violates(self, value: float) -> bool:
        if self.objective == "max":
            return value > self.threshold
        return value < self.threshold

    def _warns(self, value: float) -> bool:
        if self.objective == "max":
            return value > self.threshold * self.warn_ratio
        return value < self.threshold / self.warn_ratio


@dataclass(frozen=True)
class SLOStatus:
    """One rule's evaluated state over the (short, long) window pair."""

    rule: SLORule
    state: str
    short_value: float | None
    long_value: float | None

    def snapshot(self) -> dict:
        return {
            "name": self.rule.name,
            "probe": self.rule.probe,
            "objective": self.rule.objective,
            "threshold": self.rule.threshold,
            "state": self.state,
            "short_value": self.short_value,
            "long_value": self.long_value,
        }


def evaluate_rule(rule: SLORule, short_value: float | None,
                  long_value: float | None) -> SLOStatus:
    """Evaluate one rule against its short/long window probe values."""
    values = [v for v in (short_value, long_value) if v is not None]
    if not values:
        state = "no_data"
    elif all(rule._violates(v) for v in values):
        state = "breach"
    elif any(rule._warns(v) for v in values):
        state = "warn"
    else:
        state = "ok"
    return SLOStatus(rule, state, short_value, long_value)


def evaluate_slos(rules, probes) -> list[SLOStatus]:
    """Evaluate every rule against a ``{probe: (short, long)}`` mapping.

    A probe missing from the mapping evaluates as ``no_data`` — an absent
    signal is indistinguishable from an idle one, and neither breaches.
    """
    statuses = []
    for rule in rules:
        short_value, long_value = probes.get(rule.probe, (None, None))
        statuses.append(evaluate_rule(rule, short_value, long_value))
    return statuses


def worst_state(statuses) -> str:
    """Aggregate state: ``breach`` > ``warn`` > ``ok`` (``no_data`` = ok)."""
    worst = "ok"
    for status in statuses:
        state = status.state if isinstance(status, SLOStatus) else str(status)
        if _SEVERITY.get(state, 0) > _SEVERITY[worst]:
            worst = state
    return worst


def default_serve_rules(max_p99_seconds: float = 1.0,
                        max_shed_rate: float = 0.05,
                        min_cache_hit_rate: float | None = None
                        ) -> tuple[SLORule, ...]:
    """The serve tier's stock rules: p99 latency, shed rate, cache hits.

    The cache-hit rule is opt-in (``min_cache_hit_rate``) because a cold
    or cache-disabled service legitimately runs at 0 %.
    """
    rules = [
        SLORule(name="latency_p99", probe="latency_p99_seconds",
                objective="max", threshold=max_p99_seconds,
                description="windowed p99 request latency"),
        SLORule(name="shed_rate", probe="shed_rate",
                objective="max", threshold=max_shed_rate,
                description="rejected / submitted requests"),
    ]
    if min_cache_hit_rate is not None:
        rules.append(SLORule(
            name="cache_hit_rate", probe="cache_hit_rate",
            objective="min", threshold=min_cache_hit_rate,
            description="context cache hits / lookups"))
    return tuple(rules)


def default_online_rules(max_staleness_seconds: float = 3600.0,
                         max_probe_rmse: float | None = None
                         ) -> tuple[SLORule, ...]:
    """The online-learning loop's stock rules: model staleness (and,
    opt-in, an absolute probe-RMSE ceiling for the promoted model).

    Staleness is seconds since the serving model last absorbed the stream
    (a promotion or a rollback both reset it); an idle stream legitimately
    ages the model, so size the budget to the ingest cadence.
    """
    rules = [
        SLORule(name="model_staleness", probe="model_staleness_seconds",
                objective="max", threshold=max_staleness_seconds,
                description="seconds since the serving model last "
                            "absorbed the stream"),
    ]
    if max_probe_rmse is not None:
        rules.append(SLORule(
            name="probe_rmse", probe="probe_rmse",
            objective="max", threshold=max_probe_rmse,
            description="promoted model's cold-start probe RMSE"))
    return tuple(rules)
