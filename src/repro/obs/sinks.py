"""Trainer observer API and the built-in sinks.

:class:`HIRETrainer <repro.core.trainer.HIRETrainer>` emits one
:class:`StepEvent` per optimisation step, a :class:`ValidationEvent` per
early-stopping check, and a :class:`FitSummary` when ``fit`` returns.
Observers subclass :class:`TrainerObserver` and override any subset of the
hooks; all telemetry is passive — observers receive plain values and must
not mutate trainer, model, or RNG state.

Built-in sinks:

* :class:`ConsoleSink` — the human-readable progress line that replaced
  the trainer's bare ``print`` (same ``log_every`` cadence).
* :class:`RecorderSink` — streams events into a
  :class:`~repro.obs.recorder.RunRecorder` JSONL file.
* :class:`MetricsSink` — folds events into a
  :class:`~repro.obs.metrics.MetricsRegistry` (loss/grad-norm/step-time
  histograms, step counters, an LR gauge).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import IO

from .metrics import MetricsRegistry, get_registry
from .recorder import RunRecorder

__all__ = [
    "StepEvent",
    "ValidationEvent",
    "FitSummary",
    "TrainerObserver",
    "ConsoleSink",
    "RecorderSink",
    "MetricsSink",
]


@dataclass(frozen=True)
class StepEvent:
    """One optimisation step, as reported by ``HIRETrainer.train_step``."""

    step: int                 # 1-based step index
    total_steps: int
    loss: float
    grad_norm: float          # pre-clip global L2 norm
    lr: float
    step_seconds: float
    steps_per_second: float   # instantaneous (1 / step_seconds)
    context_n: int            # users per context
    context_m: int            # items per context
    masked_cells: int         # total query cells across the mini-batch


@dataclass(frozen=True)
class ValidationEvent:
    """One early-stopping validation check."""

    step: int
    loss: float
    best_loss: float          # best including this check
    improved: bool


@dataclass(frozen=True)
class FitSummary:
    """End-of-fit aggregate, emitted exactly once per ``fit`` call."""

    steps_run: int
    total_steps: int
    stopped_early: bool
    restored_best: bool
    final_loss: float
    best_validation: float | None
    wall_seconds: float
    steps_per_second: float


class TrainerObserver:
    """Base observer: every hook is a no-op; override what you need."""

    def on_fit_start(self, trainer, config) -> None:
        pass

    def on_step(self, event: StepEvent) -> None:
        pass

    def on_validation(self, event: ValidationEvent) -> None:
        pass

    def on_fit_end(self, summary: FitSummary) -> None:
        pass


class ConsoleSink(TrainerObserver):
    """Plain-text progress lines, every ``log_every`` steps."""

    def __init__(self, log_every: int = 10, stream: IO[str] | None = None):
        if log_every < 1:
            raise ValueError("log_every must be >= 1")
        self.log_every = log_every
        self._stream = stream

    def _out(self) -> IO[str]:
        return self._stream if self._stream is not None else sys.stdout

    def _emit(self, line: str) -> None:
        out = self._out()
        out.write(line + "\n")
        if hasattr(out, "flush"):
            out.flush()

    def on_step(self, event: StepEvent) -> None:
        if event.step % self.log_every:
            return
        self._emit(
            f"step {event.step:5d}/{event.total_steps}"
            f"  loss {event.loss:.4f}"
            f"  |g| {event.grad_norm:.3f}"
            f"  lr {event.lr:.2e}"
            f"  {event.steps_per_second:6.2f} steps/s"
        )

    def on_validation(self, event: ValidationEvent) -> None:
        marker = "*" if event.improved else " "
        self._emit(
            f"  val @ step {event.step:5d}  loss {event.loss:.4f}"
            f"  best {event.best_loss:.4f} {marker}"
        )

    def on_fit_end(self, summary: FitSummary) -> None:
        tail = " (early stop)" if summary.stopped_early else ""
        self._emit(
            f"fit done: {summary.steps_run}/{summary.total_steps} steps"
            f"  final loss {summary.final_loss:.4f}"
            f"  {summary.wall_seconds:.2f}s"
            f"  {summary.steps_per_second:.2f} steps/s{tail}"
        )


class RecorderSink(TrainerObserver):
    """Streams trainer events into a :class:`RunRecorder` JSONL file.

    ``finalize_on_fit_end`` (default True) writes the recorder's summary
    record when ``fit`` finishes; pass False to keep the recorder open for
    several fits in one run file.
    """

    def __init__(self, recorder: RunRecorder, finalize_on_fit_end: bool = True):
        self.recorder = recorder
        self.finalize_on_fit_end = finalize_on_fit_end

    def on_fit_start(self, trainer, config) -> None:
        self.recorder.record(
            "fit_start",
            trainer_config=config,
            model_parameters=sum(p.data.size for p in trainer.model.parameters()),
        )

    def on_step(self, event: StepEvent) -> None:
        self.recorder.record(
            "step",
            step=event.step,
            loss=event.loss,
            grad_norm=event.grad_norm,
            lr=event.lr,
            step_seconds=event.step_seconds,
            context_n=event.context_n,
            context_m=event.context_m,
            masked_cells=event.masked_cells,
        )

    def on_validation(self, event: ValidationEvent) -> None:
        self.recorder.record(
            "validation",
            step=event.step,
            loss=event.loss,
            best_loss=event.best_loss,
            improved=event.improved,
        )

    def on_fit_end(self, summary: FitSummary) -> None:
        if self.finalize_on_fit_end:
            self.recorder.finalize(
                steps_run=summary.steps_run,
                total_steps=summary.total_steps,
                stopped_early=summary.stopped_early,
                restored_best=summary.restored_best,
                final_loss=summary.final_loss,
                best_validation=summary.best_validation,
                wall_seconds=summary.wall_seconds,
                steps_per_second=summary.steps_per_second,
            )
        else:
            self.recorder.record("fit_end", steps_run=summary.steps_run,
                                 final_loss=summary.final_loss,
                                 wall_seconds=summary.wall_seconds)


class MetricsSink(TrainerObserver):
    """Folds trainer events into a metrics registry under ``prefix``."""

    def __init__(self, registry: MetricsRegistry | None = None,
                 prefix: str = "trainer"):
        self.registry = registry if registry is not None else get_registry()
        self.prefix = prefix

    def _name(self, leaf: str) -> str:
        return f"{self.prefix}.{leaf}" if self.prefix else leaf

    def on_step(self, event: StepEvent) -> None:
        reg = self.registry
        reg.counter(self._name("steps")).inc()
        reg.counter(self._name("masked_cells")).inc(event.masked_cells)
        reg.gauge(self._name("lr")).set(event.lr)
        reg.histogram(self._name("loss")).observe(event.loss)
        reg.histogram(self._name("grad_norm")).observe(event.grad_norm)
        reg.histogram(self._name("step_seconds")).observe(event.step_seconds)

    def on_validation(self, event: ValidationEvent) -> None:
        reg = self.registry
        reg.counter(self._name("validations")).inc()
        reg.histogram(self._name("validation_loss")).observe(event.loss)

    def on_fit_end(self, summary: FitSummary) -> None:
        self.registry.counter(self._name("fits")).inc()
        self.registry.gauge(self._name("steps_per_second")).set(
            summary.steps_per_second)
