"""Hierarchical profiling spans with near-zero disabled cost.

A *span* is a named, timed region of code::

    with obs.span("train_step"):
        with obs.span("forward"):
            ...

Nested spans build slash-joined paths (``train_step/forward``) on a
thread-local stack, and every exit folds the span's wall time into a
process-wide aggregation table (count / total / min / max seconds per
path).  Profiling is **off by default**: :func:`span` then returns a
shared no-op context manager, so the cost of an instrumented call site is
one function call and one flag check — no allocation, no clock read.

The aggregation table is the single sink for all wall-time attribution:
:mod:`repro.obs.ophooks` feeds per-op timings into it under the current
span path, and :func:`span_report` renders it as a text table.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

__all__ = [
    "span",
    "enable_profiling",
    "profiling_enabled",
    "profiling",
    "current_span_path",
    "record_span",
    "span_totals",
    "reset_spans",
    "SpanStats",
]

_ENABLED = False
_LOCAL = threading.local()
_LOCK = threading.Lock()
# path -> [count, total_seconds, min_seconds, max_seconds]
_TOTALS: dict[str, list[float]] = {}


@dataclass(frozen=True)
class SpanStats:
    """Immutable snapshot of one span path's aggregated wall time."""

    path: str
    count: int
    total_seconds: float
    min_seconds: float
    max_seconds: float

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


def enable_profiling(enabled: bool = True) -> None:
    """Globally switch span timing on or off (off by default)."""
    global _ENABLED
    _ENABLED = bool(enabled)


def profiling_enabled() -> bool:
    return _ENABLED


class profiling:
    """Context manager scoping :func:`enable_profiling` to a block."""

    def __init__(self, enabled: bool = True):
        self._enabled = enabled

    def __enter__(self):
        self._prev = _ENABLED
        enable_profiling(self._enabled)
        return self

    def __exit__(self, *exc):
        enable_profiling(self._prev)
        return False


def _stack() -> list[str]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def current_span_path() -> str:
    """Slash-joined path of the innermost open span ("" at top level)."""
    stack = getattr(_LOCAL, "stack", None)
    return stack[-1] if stack else ""


def record_span(path: str, seconds: float) -> None:
    """Fold one observation into the aggregation table (used by ophooks)."""
    with _LOCK:
        entry = _TOTALS.get(path)
        if entry is None:
            _TOTALS[path] = [1, seconds, seconds, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds
            if seconds < entry[2]:
                entry[2] = seconds
            if seconds > entry[3]:
                entry[3] = seconds


class _NullSpan:
    """Shared do-nothing span returned while profiling is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("name", "path", "_start")

    def __init__(self, name: str):
        self.name = name
        self.path = ""
        self._start = 0.0

    def __enter__(self):
        stack = _stack()
        self.path = f"{stack[-1]}/{self.name}" if stack else self.name
        stack.append(self.path)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        elapsed = time.perf_counter() - self._start
        stack = _stack()
        if stack and stack[-1] == self.path:
            stack.pop()
        record_span(self.path, elapsed)
        return False


def span(name: str):
    """Open a named profiling span (no-op unless profiling is enabled)."""
    if not _ENABLED:
        return _NULL_SPAN
    return _Span(name)


def span_totals() -> dict[str, SpanStats]:
    """Snapshot of the aggregation table, keyed by span path."""
    with _LOCK:
        return {
            path: SpanStats(path, int(e[0]), e[1], e[2], e[3])
            for path, e in _TOTALS.items()
        }


def reset_spans() -> None:
    """Clear all aggregated span statistics."""
    with _LOCK:
        _TOTALS.clear()
