"""Structured run logging: one JSONL file per run.

A :class:`RunRecorder` writes newline-delimited JSON events to a single
file: a ``run_start`` record (with a sanitised config snapshot), any number
of typed event records (``step``, ``validation``, ...), and a final
``summary`` record written by :meth:`RunRecorder.finalize`.  The format is
append-only and line-oriented, so a crashed run still leaves every event
up to the crash readable by :func:`read_run`.

Recording is purely passive: the recorder never touches model or RNG
state, only serialises what callers hand it.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path
from typing import IO, Any

__all__ = ["RunRecorder", "read_run", "jsonable"]


def jsonable(value: Any) -> Any:
    """Best-effort conversion of configs/metrics into JSON-able values.

    Handles dataclasses, mappings, sequences, numpy scalars and arrays
    (via their ``item``/``tolist`` duck-type), and paths; anything else
    falls back to ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    if isinstance(value, Path):
        return str(value)
    if hasattr(value, "ndim") and hasattr(value, "tolist"):  # numpy array
        return value.tolist() if value.ndim else value.item()
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return repr(value)


class RunRecorder:
    """Append-only JSONL event log for one run.

    Usable as a context manager; exiting finalises the run (with an
    ``aborted`` marker if an exception is propagating and no summary was
    written yet).
    """

    def __init__(self, path: str | os.PathLike, run_id: str | None = None,
                 config: Any = None, flush_every: int = 1):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.run_id = run_id or self.path.stem
        self._flush_every = max(int(flush_every), 1)
        self._since_flush = 0
        self._finalized = False
        self._num_events = 0
        self._file: IO[str] | None = self.path.open("w", encoding="utf-8")
        self._write({
            "type": "run_start",
            "run_id": self.run_id,
            "unix_time": time.time(),
            "config": jsonable(config) if config is not None else None,
        })

    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._file is None

    @property
    def num_events(self) -> int:
        return self._num_events

    def _write(self, record: dict) -> None:
        if self._file is None:
            raise ValueError(f"recorder for {self.path} is closed")
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._num_events += 1
        self._since_flush += 1
        if self._since_flush >= self._flush_every:
            self._file.flush()
            self._since_flush = 0

    def record(self, event_type: str, **fields: Any) -> None:
        """Append one typed event record."""
        if event_type in ("run_start", "summary"):
            raise ValueError(f"{event_type!r} records are written by the recorder")
        self._write({"type": event_type,
                     **{k: jsonable(v) for k, v in fields.items()}})

    def finalize(self, **summary: Any) -> None:
        """Write the closing ``summary`` record and close the file."""
        if self._finalized:
            return
        self._write({"type": "summary", "run_id": self.run_id,
                     "unix_time": time.time(),
                     **{k: jsonable(v) for k, v in summary.items()}})
        self._finalized = True
        self.close()

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            self._file.close()
            self._file = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if not self._finalized:
            self.finalize(aborted=exc_type is not None,
                          error=repr(exc) if exc is not None else None)
        return False


def read_run(path: str | os.PathLike) -> list[dict]:
    """Parse a run's JSONL file back into a list of event dicts.

    Tolerates a truncated final line (crash mid-write): complete records
    up to that point are returned.
    """
    records: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                break  # truncated tail from a crashed writer
    return records
