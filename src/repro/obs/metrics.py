"""Metrics registry: counters, gauges, and streaming histograms.

All instruments are bounded-memory.  :class:`Histogram` keeps log-spaced
buckets (geometric resolution ``growth``, ~5 % by default) rather than the
raw samples, so p50/p90/p99 come from bucket interpolation no matter how
many observations stream through — there is no unbounded buffer anywhere.

A process-wide default registry (:func:`get_registry`) serves the common
case; independent :class:`MetricsRegistry` instances can be created for
isolated runs (tests do this).
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (e.g. current learning rate)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming histogram over positive-ish values with log-spaced buckets.

    Values are binned by ``floor(log(v) / log(growth))``; each bucket spans
    a constant *ratio*, so quantile estimates carry a bounded relative
    error of ``growth - 1`` (~5 % by default).  Non-positive values land in
    a dedicated underflow bucket pinned at the observed minimum.  Exact
    ``count`` / ``sum`` / ``min`` / ``max`` are tracked alongside.
    """

    __slots__ = ("name", "growth", "_log_growth", "_buckets", "_underflow",
                 "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, growth: float = 1.05):
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.name = name
        self.growth = growth
        self._log_growth = math.log(growth)
        self._buckets: dict[int, int] = {}
        self._underflow = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if value <= 0.0:
                self._underflow += 1
            else:
                index = int(math.floor(math.log(value) / self._log_growth))
                self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) from the bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            if q == 0.0:
                return self._min
            if q == 1.0:
                return self._max
            rank = q * self._count
            cumulative = self._underflow
            if rank <= cumulative:
                return self._min
            for index in sorted(self._buckets):
                cumulative += self._buckets[index]
                if rank <= cumulative:
                    # Geometric midpoint of the bucket, clamped to the
                    # exactly-tracked observed range.
                    mid = self.growth ** (index + 0.5)
                    return min(max(mid, self._min), self._max)
            return self._max

    def percentiles(self) -> dict[str, float]:
        return {"p50": self.quantile(0.50), "p90": self.quantile(0.90),
                "p99": self.quantile(0.99)}

    def num_buckets(self) -> int:
        return len(self._buckets) + (1 if self._underflow else 0)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram, in place.

        Both histograms must share the same bucket ``growth`` — merging is
        a lossless sum of bucket counts, so per-shard or per-window
        histograms aggregate without losing bucket resolution.  Returns
        ``self`` so merges chain.
        """
        if not isinstance(other, Histogram):
            raise TypeError(f"cannot merge {type(other).__name__} into a Histogram")
        if other.growth != self.growth:
            raise ValueError(
                f"bucket growth mismatch: {self.growth} vs {other.growth}")
        with other._lock:
            buckets = dict(other._buckets)
            underflow = other._underflow
            count = other._count
            total = other._sum
            other_min, other_max = other._min, other._max
        if count == 0:
            return self
        with self._lock:
            for index, n in buckets.items():
                self._buckets[index] = self._buckets.get(index, 0) + n
            self._underflow += underflow
            self._count += count
            self._sum += total
            if other_min < self._min:
                self._min = other_min
            if other_max > self._max:
                self._max = other_max
        return self

    def snapshot(self) -> dict:
        with self._lock:
            count, total = self._count, self._sum
        out = {"type": "histogram", "count": count, "sum": total,
               "min": self.min, "max": self.max,
               "mean": total / count if count else 0.0}
        out.update(self.percentiles())
        return out


class MetricsRegistry:
    """Named instruments, created on first use and reused thereafter."""

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, **kwargs):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = cls(name, **kwargs)
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {cls.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, growth: float = 1.05) -> Histogram:
        return self._get(name, Histogram, growth=growth)

    def instrument(self, name: str, factory):
        """Register a custom instrument (anything with ``snapshot()``).

        ``factory(name)`` is called once on first use; later calls return
        the existing instrument.  This is how the windowed instruments of
        :mod:`repro.obs.windows` join a registry's :meth:`snapshot`.
        """
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = factory(name)
            return instrument

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> dict[str, dict]:
        """JSON-able state of every instrument, keyed by name."""
        with self._lock:
            instruments = dict(self._instruments)
        return {name: inst.snapshot() for name, inst in sorted(instruments.items())}

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (returns the previous one)."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous
