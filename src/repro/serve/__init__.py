"""``repro.serve`` — online inference for trained HIRE models.

The serving subsystem turns the offline :class:`~repro.core.HIREPredictor`
pipeline into an always-on prediction service:

* :mod:`~repro.serve.registry` — named checkpoint/model versions with
  atomic hot swap, loading HIRE + config straight from checkpoint metadata;
* :mod:`~repro.serve.batcher` — a bounded-queue micro-batcher coalescing
  ``(user, item_ids)`` requests by size/deadline into shared forward passes;
* :mod:`~repro.serve.cache` — LRU+TTL caches for assembled prediction
  contexts and sampled frontiers, with entity-tagged fine-grained
  invalidation driven by a per-entity reverse index;
* :mod:`~repro.serve.dataplane` — the shared :class:`GraphStore`: atomic
  graph snapshots, incremental delta application
  (:meth:`RatingGraph.apply_deltas`), per-entity version tracking;
* :mod:`~repro.serve.workers` — a thread worker pool with load-shedding
  backpressure and graceful, drain-aware shutdown;
* :mod:`~repro.serve.service` — the :class:`PredictionService` façade tying
  these together behind ``submit()`` / ``predict()`` / ``close()``, with
  latency/queue/cache telemetry through :mod:`repro.obs`;
* :mod:`~repro.serve.shard` — the :class:`ShardRouter`: user-hash routing
  across N services sharing one graph store (``docs/scaling.md``);
* :mod:`~repro.serve.workload` — workload synthesis (skewed, power-law,
  update bursts), JSONL persistence, and replay (the ``repro-experiments
  serve`` CLI builds on this).

Because context assembly derives its RNG from ``(seed, user, sample,
chunk)`` (:func:`repro.core.task_chunk_rng`), served scores are
**bit-identical** to a sequential ``HIREPredictor(per_task_rng=True)`` no
matter how requests are batched, cached, or spread across workers.  See
``docs/serving.md``.
"""

from .batcher import MicroBatcher, PredictRequest, group_requests
from .cache import (
    CacheStats,
    ContextCache,
    FrontierBinding,
    FrontierCache,
    context_cache_key,
    frontier_cache_key,
)
from .dataplane import (
    EntityVersions,
    GraphSnapshot,
    GraphStore,
    UpdateResult,
    dedupe_deltas,
)
from .errors import (
    QueueFullError,
    RequestError,
    ServeError,
    ServiceClosedError,
    UnknownModelError,
)
from .registry import ModelRegistry, ModelVersion
from .service import PredictionService, ServiceConfig
from .shard import RouterConfig, ShardRouter, shard_of_user
from .workers import BoundedQueue, WorkerPool
from .workload import (
    WorkloadRequest,
    load_workload,
    replay_workload,
    save_workload,
    synthesize_power_law_workload,
    synthesize_update_bursts,
    synthesize_workload,
)

__all__ = [
    # errors
    "ServeError",
    "QueueFullError",
    "ServiceClosedError",
    "UnknownModelError",
    "RequestError",
    # registry
    "ModelRegistry",
    "ModelVersion",
    # batching / queueing
    "MicroBatcher",
    "PredictRequest",
    "group_requests",
    "BoundedQueue",
    "WorkerPool",
    # cache
    "ContextCache",
    "FrontierCache",
    "FrontierBinding",
    "CacheStats",
    "context_cache_key",
    "frontier_cache_key",
    # data plane
    "GraphStore",
    "GraphSnapshot",
    "EntityVersions",
    "UpdateResult",
    "dedupe_deltas",
    # service
    "PredictionService",
    "ServiceConfig",
    # sharding
    "ShardRouter",
    "RouterConfig",
    "shard_of_user",
    # workload
    "WorkloadRequest",
    "synthesize_workload",
    "synthesize_power_law_workload",
    "synthesize_update_bursts",
    "save_workload",
    "load_workload",
    "replay_workload",
]
