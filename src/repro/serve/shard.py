"""Sharded serving: a user-hash router over N :class:`PredictionService`\\ s.

One process-level scaling step past a single service: the
:class:`ShardRouter` partitions *request traffic* (never the graph) across
``num_shards`` fully independent :class:`~repro.serve.service.PredictionService`
instances — each with its own micro-batcher, worker pool, context cache,
and telemetry registry — routed by a stable hash of the user id
(:func:`shard_of_user`).

What is shared is exactly one thing: the
:class:`~repro.serve.dataplane.GraphStore`.  Context sampling draws warm
neighbours from the *whole* rating graph, so partitioning the graph itself
would change assembled contexts and break the serving tier's bit-identity
guarantee.  With one store, every shard sees the same snapshots and the
same fine-grained invalidation stream, and the router's ``update_ratings``
is a single ``store.apply`` — each shard's subscription evicts its own
cache entries for the changed entities.  Consequently a sharded deployment
is **bit-identical** to a single service, which is bit-identical to the
sequential ``HIREPredictor(per_task_rng=True)`` (asserted by the
benchmark and ``tests/serve/test_shard.py``).

Sticky user→shard routing keeps each user's context-cache entries on one
shard (no duplicated warm state), makes per-user traffic observable per
shard, and — because the hash is seeded and process-stable — reproducible
across runs.  Models may be shared (one registry serves every shard) or
per-shard (a list of N registries — hot-swap shards independently via
``router.shards[i]``).  See ``docs/scaling.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..core.predictor import build_serving_graph
from .dataplane import GraphStore, UpdateResult
from .errors import QueueFullError, ServiceClosedError
from .service import PredictionService, ServiceConfig

__all__ = ["RouterConfig", "ShardRouter", "shard_of_user"]

_STATE_RANK = {"no_data": 0, "ok": 1, "warn": 2, "breach": 3}


@dataclass
class RouterConfig:
    """Knobs of the shard router (per-shard knobs live in ServiceConfig)."""

    num_shards: int = 2
    # Seeds the user-hash so distinct deployments can decorrelate their
    # shard assignment; routing stays stable for a fixed seed.
    hash_seed: int = 0

    def __post_init__(self):
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")


def shard_of_user(user: int, num_shards: int, hash_seed: int = 0) -> int:
    """Stable shard index of a user: splitmix64-mixed, mod ``num_shards``.

    Deliberately not Python's ``hash`` (randomized per process): the same
    user must land on the same shard across processes and runs, so cache
    warmth and the routed-traffic balance are reproducible.
    """
    x = (int(user) + 0x9E3779B97F4A7C15 * (hash_seed + 1)) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return (x ^ (x >> 31)) % num_shards


class ShardRouter:
    """Route requests across N prediction-service shards by user hash.

    Parameters
    ----------
    models:
        One model/registry shared by every shard, or a list of exactly
        ``num_shards`` models/registries for independent per-shard hot
        swap.
    graph / candidate_users / candidate_items:
        The serving graph state, wrapped in ONE shared
        :class:`~repro.serve.dataplane.GraphStore` (built with the base
        config's ``incremental_updates`` / ``incremental_verify``).
    config:
        The per-shard :class:`ServiceConfig`; every shard gets the same
        knobs (and its own metrics registry under the same prefix).
    rating_log:
        Optional :class:`repro.online.RatingLog`, attached to the shared
        store so each applied delta tees exactly once.
    """

    def __init__(self, models, graph, candidate_users, candidate_items,
                 sampler=None, config: ServiceConfig | None = None,
                 router_config: RouterConfig | None = None,
                 metrics: obs.MetricsRegistry | None = None,
                 rating_log=None, clock=time.monotonic):
        self.config = config or ServiceConfig()
        self.router_config = router_config or RouterConfig()
        self.metrics = metrics if metrics is not None else obs.MetricsRegistry()
        self._clock = clock
        num_shards = self.router_config.num_shards
        if isinstance(models, (list, tuple)):
            if len(models) != num_shards:
                raise ValueError(
                    f"got {len(models)} models for {num_shards} shards; pass "
                    "one model/registry (shared) or exactly one per shard")
            shard_models = list(models)
        else:
            shard_models = [models] * num_shards
        self.store = GraphStore(
            graph,
            np.asarray(candidate_users, dtype=np.int64),
            np.asarray(candidate_items, dtype=np.int64),
            incremental=self.config.incremental_updates,
            verify=self.config.incremental_verify,
            rating_log=rating_log)
        self.shards: tuple[PredictionService, ...] = tuple(
            PredictionService(shard_models[index], graph,
                              candidate_users, candidate_items,
                              sampler=sampler, config=self.config,
                              metrics=obs.MetricsRegistry(),
                              graph_store=self.store, clock=clock)
            for index in range(num_shards))
        self._gauge("shard.num_shards").set(num_shards)
        self._closed = False

    @classmethod
    def from_split(cls, models, split, tasks, **kwargs) -> "ShardRouter":
        """Build the serving state exactly like :class:`PredictionService`."""
        graph, candidate_users, candidate_items = build_serving_graph(split, tasks)
        return cls(models, graph, candidate_users, candidate_items, **kwargs)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return self.router_config.num_shards

    def shard_of(self, user: int) -> int:
        """The shard index ``user``'s requests route to (stable)."""
        return shard_of_user(user, self.num_shards,
                            self.router_config.hash_seed)

    def submit(self, user: int, item_ids, support_items=None, *,
               context_users: int | None = None,
               context_items: int | None = None):
        """Route one request to its user's shard; returns that shard's future.

        Same contract as :meth:`PredictionService.submit` — never blocks,
        raises :class:`QueueFullError` when the target shard sheds load
        (the router does not spill to other shards: spilling would move a
        user off their cache-warm shard to save one retry).
        """
        if self._closed:
            raise ServiceClosedError("router is closed")
        try:
            future = self.shards[self.shard_of(user)].submit(
                user, item_ids, support_items,
                context_users=context_users, context_items=context_items)
        except (QueueFullError, ServiceClosedError):
            self._counter("shard.rejected_total").inc()
            raise
        self._counter("shard.routed_total").inc()
        return future

    def predict(self, user: int, item_ids, support_items=None,
                timeout: float | None = 30.0, *,
                context_users: int | None = None,
                context_items: int | None = None) -> np.ndarray:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(user, item_ids, support_items,
                           context_users=context_users,
                           context_items=context_items).result(timeout)

    def predict_many(self, requests, timeout: float = 60.0) -> list[np.ndarray]:
        """Fan a request sequence across the shards, gather in order.

        All requests are submitted before any result is awaited, so each
        shard's micro-batcher still coalesces its slice of the traffic;
        results come back in submission order regardless of which shard
        finished first.
        """
        futures = [
            self.submit(request.user, request.item_ids, request.support_items,
                        context_users=getattr(request, "context_users", None),
                        context_items=getattr(request, "context_items", None))
            for request in requests
        ]
        return [future.result(timeout) for future in futures]

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def update_ratings(self, ratings: np.ndarray) -> int:
        """Apply rating deltas once, to the shared store.

        Every shard sees the update through its store subscription and
        evicts exactly its cache entries touching the changed entities.
        Returns the number of deltas applied (see
        :meth:`PredictionService.update_ratings` for the dedupe rules).
        """
        result: UpdateResult = self.store.apply(ratings)
        self._counter("shard.updates_total").inc()
        self._counter("shard.update_deltas_total").inc(result.applied)
        return result.applied

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def _counter(self, name: str):
        return self.metrics.counter(f"{self.config.metrics_prefix}.{name}")

    def _gauge(self, name: str):
        return self.metrics.gauge(f"{self.config.metrics_prefix}.{name}")

    def routed_per_shard(self) -> list[int]:
        """Requests each shard admitted (from its own requests_total)."""
        prefix = self.config.metrics_prefix
        return [int(shard.metrics.counter(f"{prefix}.requests_total").value)
                for shard in self.shards]

    def load_imbalance(self) -> float | None:
        """``max / mean`` of per-shard routed counts (1.0 = perfectly even).

        ``None`` before any traffic.  The headline the benchmark gates is
        the inverse ratio ``mean / max`` (higher is better); this gauge
        keeps the conventional "how many times its fair share is the
        hottest shard carrying" orientation for dashboards.
        """
        routed = self.routed_per_shard()
        total = sum(routed)
        if total == 0:
            return None
        return max(routed) / (total / len(routed))

    def stats(self) -> dict:
        """Router aggregates plus every shard's own stats snapshot."""
        routed = self.routed_per_shard()
        imbalance = self.load_imbalance()
        if imbalance is not None:
            self._gauge("shard.load_imbalance").set(imbalance)
        shard_stats = [shard.stats() for shard in self.shards]
        caches = [s["cache"] for s in shard_stats if "cache" in s]
        spared = sum(c["entries_spared"] for c in caches)
        evicted = sum(c["entries_evicted"] for c in caches)
        return {
            "num_shards": self.num_shards,
            "queue_depth": sum(s["queue_depth"] for s in shard_stats),
            "graph_generation": self.store.state.generation,
            "updates": self.store.stats(),
            "routed_per_shard": routed,
            "load_imbalance": imbalance,
            "invalidation_precision": (spared / (spared + evicted)
                                       if spared + evicted else None),
            "metrics": self.metrics.snapshot(),
            "shards": shard_stats,
        }

    def health(self) -> dict:
        """The worst shard state wins; per-shard states ride along."""
        healths = [shard.health() for shard in self.shards]
        worst = max((h["state"] for h in healths),
                    key=lambda state: _STATE_RANK.get(state, 0))
        return {
            "state": worst,
            "num_shards": self.num_shards,
            "shards": healths,
            "closed": self._closed,
        }

    def report(self) -> str:
        """Router summary plus each shard's full telemetry report."""
        routed = self.routed_per_shard()
        imbalance = self.load_imbalance()
        updates = self.store.stats()
        lines = [
            f"shard router: {self.num_shards} shards"
            f"   routed {routed}"
            + (f"   load imbalance {imbalance:.2f}x"
               if imbalance is not None else ""),
            f"graph updates: {updates['applied_total']} applied /"
            f" {updates['skipped_total']} skipped"
            f" (generation {updates['generation']},"
            f" {updates['partial_invalidations']} partial /"
            f" {updates['full_invalidations']} full invalidations)",
        ]
        for index, shard in enumerate(self.shards):
            lines.append("")
            lines.append(f"--- shard {index} ---")
            lines.append(shard.report())
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Close every shard (drain-aware, same contract as the service)."""
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            shard.close(drain=drain, timeout=timeout)

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    @property
    def closed(self) -> bool:
        return self._closed
