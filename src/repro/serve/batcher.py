"""Request micro-batching over the bounded queue.

A :class:`MicroBatcher` coalesces pending requests into batches of up to
``max_batch_size``, waiting at most ``max_wait_seconds`` after the first
request before dispatching — the classic latency/throughput knob.  Batches
are formed by whichever worker thread asks next; each request lands in
exactly exactly one batch (queue pops are atomic).

Identical requests inside a batch — same user, same items, same supports —
are *coalesced* by :func:`group_requests`: the context is assembled and
scored once and the result fans out to every caller's future.  HIRE scores
an n × m context matrix in one forward pass, so requests for different
users stack into one batched forward downstream (see
:meth:`repro.core.HIRE.predict_many`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from concurrent.futures import Future

import numpy as np

from .errors import ServiceClosedError
from .workers import BoundedQueue

__all__ = ["PredictRequest", "MicroBatcher", "group_requests"]


@dataclass
class PredictRequest:
    """One pending ``(user, item_ids)`` prediction with its result future."""

    user: int
    item_ids: np.ndarray
    support_items: np.ndarray
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.perf_counter)

    def key(self) -> tuple:
        """Coalescing identity: requests with equal keys share one result."""
        return (self.user, tuple(self.item_ids.tolist()),
                tuple(self.support_items.tolist()))


def group_requests(batch: list[PredictRequest]
                   ) -> list[tuple[tuple, list[PredictRequest]]]:
    """Group a batch by request identity, preserving first-seen order."""
    groups: dict[tuple, list[PredictRequest]] = {}
    for request in batch:
        groups.setdefault(request.key(), []).append(request)
    return list(groups.items())


class MicroBatcher:
    """Coalesce queued requests into bounded, deadline-limited batches."""

    def __init__(self, max_batch_size: int = 8, max_wait_seconds: float = 0.002,
                 queue_size: int = 64, clock=time.monotonic):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be >= 0")
        self.max_batch_size = max_batch_size
        self.max_wait_seconds = max_wait_seconds
        self.queue = BoundedQueue(queue_size)
        self._clock = clock

    def submit(self, request: PredictRequest) -> None:
        """Enqueue a request (non-blocking; sheds load when full)."""
        self.queue.put(request)

    def next_batch(self, timeout: float = 0.05) -> list[PredictRequest]:
        """Gather the next batch, or ``[]`` if nothing arrived in time.

        Blocks up to ``timeout`` for the first request, then keeps
        gathering until ``max_batch_size`` requests are in hand or
        ``max_wait_seconds`` has elapsed since the first one.  Raises
        :class:`~repro.serve.errors.ServiceClosedError` once the queue is
        closed and fully drained.
        """
        first = self.queue.get(timeout)
        if first is None:
            return []
        batch = [first]
        deadline = self._clock() + self.max_wait_seconds
        while len(batch) < self.max_batch_size:
            remaining = deadline - self._clock()
            if remaining <= 0:
                break
            try:
                request = self.queue.get(remaining)
            except ServiceClosedError:
                break  # closed-and-drained: ship what we have
            if request is None:
                break
            batch.append(request)
        return batch

    def close(self) -> None:
        self.queue.close()

    def drain(self) -> list[PredictRequest]:
        """Remove and return every queued request (non-draining shutdown)."""
        return self.queue.drain()

    @property
    def depth(self) -> int:
        return len(self.queue)
