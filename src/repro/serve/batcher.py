"""Request micro-batching over the bounded queue.

A :class:`MicroBatcher` coalesces pending requests into batches of up to
``max_batch_size``, waiting at most ``max_wait_seconds`` after the first
request before dispatching — the classic latency/throughput knob.  Batches
are formed by whichever worker thread asks next; each request lands in
exactly exactly one batch (queue pops are atomic).

Identical requests inside a batch — same user, same items, same supports —
are *coalesced* by :func:`group_requests`: the context is assembled and
scored once and the result fans out to every caller's future.  HIRE scores
an n × m context matrix in one forward pass, so requests for different
users stack into one batched forward downstream (see
:meth:`repro.core.HIRE.predict_many`).

When a ``bucket_key`` is configured, batches are additionally shaped for
the padded packer: each batch holds requests of a single shape bucket
(same rounded context budget), gathered bucket-first so one downstream
packed plan execution covers the whole batch.  Requests of *other* buckets
seen while gathering are parked in a pending buffer — never dropped — and
lead the very next batch; a deadline flushes a partially filled bucket
rather than waiting for exact coalescing, bounding any request's wait to
roughly two ``max_wait_seconds`` windows.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from concurrent.futures import Future

import numpy as np

from .errors import ServiceClosedError
from .workers import BoundedQueue

__all__ = ["PredictRequest", "MicroBatcher", "group_requests"]


@dataclass
class PredictRequest:
    """One pending ``(user, item_ids)`` prediction with its result future.

    ``context_users`` / ``context_items`` optionally override the service's
    context budgets for this request (``None`` = service default); they are
    part of the coalescing key, since different budgets sample different
    contexts.

    The three timestamps are stamped by the batcher, **all from the
    batcher's own clock** (``MicroBatcher(clock=...)``): ``enqueued_at`` on
    :meth:`MicroBatcher.submit`, ``dequeued_at`` when a worker pops the
    request (re-stamped if the request is parked and re-popped), and
    ``batch_formed_at`` when its batch ships.  One clock for stamps and
    deadlines means latency histograms and deadline flushes always agree —
    including under a fake clock in tests.  ``trace`` optionally carries a
    :class:`repro.obs.RequestTrace` through the pipeline.
    """

    user: int
    item_ids: np.ndarray
    support_items: np.ndarray
    context_users: int | None = None
    context_items: int | None = None
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)
    dequeued_at: float = 0.0
    batch_formed_at: float = 0.0
    trace: object = None
    # Graph snapshot pinned at admission — a
    # repro.serve.dataplane.GraphSnapshot, i.e. a (graph, candidate_users,
    # candidate_items, generation, epoch) NamedTuple.  A request always
    # executes against the graph it was validated under, so a concurrent
    # ``update_ratings`` can never turn an admitted request's query cells
    # observed mid-flight.
    graph_state: tuple | None = None

    @property
    def generation(self) -> int | None:
        return None if self.graph_state is None else self.graph_state[3]

    def key(self) -> tuple:
        """Coalescing identity: requests with equal keys share one result."""
        return (self.user, tuple(self.item_ids.tolist()),
                tuple(self.support_items.tolist()),
                self.context_users, self.context_items, self.generation)


def group_requests(batch: list[PredictRequest]
                   ) -> list[tuple[tuple, list[PredictRequest]]]:
    """Group a batch by request identity, preserving first-seen order."""
    groups: dict[tuple, list[PredictRequest]] = {}
    for request in batch:
        groups.setdefault(request.key(), []).append(request)
    return list(groups.items())


class MicroBatcher:
    """Coalesce queued requests into bounded, deadline-limited batches.

    With ``bucket_key`` (a callable mapping a request to a hashable shape
    bucket), every batch is homogeneous in bucket: the first request fixes
    the batch's bucket, same-bucket requests fill it, and other-bucket
    requests are parked in an internal pending buffer that leads the next
    batch.  The deadline flushes partially filled buckets — a request is
    never held past its batch's ``max_wait_seconds`` window waiting for
    bucket-mates, and a parked request starts its own window as soon as a
    worker asks again.
    """

    def __init__(self, max_batch_size: int = 8, max_wait_seconds: float = 0.002,
                 queue_size: int = 64, clock=time.monotonic, bucket_key=None):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be >= 0")
        self.max_batch_size = max_batch_size
        self.max_wait_seconds = max_wait_seconds
        self.queue = BoundedQueue(queue_size)
        self._clock = clock
        self.bucket_key = bucket_key
        self._pending: deque[PredictRequest] = deque()
        self._pending_lock = threading.Lock()

    def submit(self, request: PredictRequest) -> None:
        """Enqueue a request (non-blocking; sheds load when full).

        Stamps ``enqueued_at`` from the batcher's clock so queue-wait
        measurements share a timebase with the gather deadline.
        """
        request.enqueued_at = self._clock()
        self.queue.put(request)

    def next_batch(self, timeout: float = 0.05) -> list[PredictRequest]:
        """Gather the next batch, or ``[]`` if nothing arrived in time.

        Blocks up to ``timeout`` for the first request, then keeps
        gathering until ``max_batch_size`` requests are in hand or
        ``max_wait_seconds`` has elapsed since the first one.  Raises
        :class:`~repro.serve.errors.ServiceClosedError` once the queue is
        closed and fully drained (and no requests are parked).
        """
        first = self._pop_pending()
        if first is None:
            try:
                first = self.queue.get(timeout)
            except ServiceClosedError:
                first = self._pop_pending()  # parked after a racing close
                if first is None:
                    raise
            if first is None:
                return []
            first.dequeued_at = self._clock()
        if self.bucket_key is None:
            return self._gather(first, lambda request: True)
        bucket = self.bucket_key(first)
        return self._gather(first,
                            lambda request: self.bucket_key(request) == bucket)

    def _gather(self, first: PredictRequest, accept) -> list[PredictRequest]:
        batch = [first]
        now = self._clock()
        deadline = now + self.max_wait_seconds
        # Parked requests first: they have been waiting the longest.
        with self._pending_lock:
            kept: deque[PredictRequest] = deque()
            while self._pending and len(batch) < self.max_batch_size:
                request = self._pending.popleft()
                if accept(request):
                    request.dequeued_at = now
                    batch.append(request)
                else:
                    kept.append(request)
            kept.extend(self._pending)
            self._pending = kept
        while len(batch) < self.max_batch_size:
            remaining = deadline - self._clock()
            if remaining <= 0:
                break
            try:
                request = self.queue.get(remaining)
            except ServiceClosedError:
                break  # closed-and-drained: ship what we have
            if request is None:
                break
            request.dequeued_at = self._clock()
            if accept(request):
                batch.append(request)
            else:
                # Parked: dequeued_at is re-stamped at the final pop, so
                # the enqueue stage spans the park time too.
                with self._pending_lock:
                    self._pending.append(request)
        formed_at = self._clock()
        for request in batch:
            request.batch_formed_at = formed_at
        return batch

    def _pop_pending(self) -> PredictRequest | None:
        with self._pending_lock:
            if not self._pending:
                return None
            request = self._pending.popleft()
            request.dequeued_at = self._clock()
            return request

    def close(self) -> None:
        self.queue.close()

    def drain(self) -> list[PredictRequest]:
        """Remove and return every queued request (non-draining shutdown)."""
        with self._pending_lock:
            parked = list(self._pending)
            self._pending.clear()
        return parked + self.queue.drain()

    @property
    def depth(self) -> int:
        with self._pending_lock:
            parked = len(self._pending)
        return parked + len(self.queue)
