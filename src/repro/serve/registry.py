"""Checkpoint/model registry with named versions and atomic hot swap.

Built on :mod:`repro.nn.serialization`: a checkpoint written by
:meth:`HIRE.save` carries its :class:`HIREConfig` in the ``__meta__``
namespace, so :meth:`ModelRegistry.register` can reconstruct the model
without the caller restating hyper-parameters.  The *active* model — the
one the serving layer scores with — is swapped atomically under a lock:
in-flight batches finish on the model they resolved, subsequent batches
see the new one.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path

from ..core.model import HIRE, HIREConfig
from ..data.schema import RatingDataset
from ..nn import inference
from ..nn.serialization import load_checkpoint
from .errors import UnknownModelError

__all__ = ["ModelRegistry", "ModelVersion"]


@dataclass(frozen=True)
class ModelVersion:
    """Immutable record of one registered model version."""

    name: str
    config: HIREConfig
    path: Path | None          # None for models registered in-memory
    metadata: dict


class ModelRegistry:
    """Named HIRE versions over one dataset, with a hot-swappable active one.

    The registry owns the dataset handle because a HIRE checkpoint stores
    parameters and config but not the attribute schema the encoder embeds;
    every registered version must come from (a model trained on) the same
    dataset.
    """

    def __init__(self, dataset: RatingDataset, dtype=None):
        self.dataset = dataset
        self._dtype = dtype
        self._lock = threading.RLock()
        self._versions: dict[str, tuple[ModelVersion, HIRE]] = {}
        self._active: str | None = None

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, name: str, path: str | Path,
                 activate: bool = False) -> ModelVersion:
        """Load a checkpoint written by :meth:`HIRE.save` under ``name``.

        The first registered version becomes active automatically;
        ``activate=True`` swaps later versions in atomically.
        """
        state, metadata = load_checkpoint(path, dtype=self._dtype)
        config_dict = metadata.get("config")
        if config_dict is None:
            raise ValueError(
                f"checkpoint {path} carries no config metadata; "
                "write it with HIRE.save, not save_module")
        config = HIREConfig(**config_dict)
        model = HIRE(self.dataset, config)
        model.load_state_dict(state)
        return self.add(name, model, path=Path(path), metadata=metadata,
                        activate=activate)

    def add(self, name: str, model: HIRE, path: Path | None = None,
            metadata: dict | None = None, activate: bool = False) -> ModelVersion:
        """Register an in-memory model (benchmarks and tests skip the disk)."""
        model.eval()  # serving models never flip back to training mode
        version = ModelVersion(name=name, config=model.config, path=path,
                               metadata=metadata or {})
        with self._lock:
            if name in self._versions:
                raise ValueError(f"model {name!r} is already registered; "
                                 "unregister it first or pick a new name")
            self._versions[name] = (version, model)
            if activate or self._active is None:
                self._active = name
        # Retire cached inference plans keyed on previously active models.
        inference.bump_generation()
        return version

    def unregister(self, name: str, fallback: bool = False) -> None:
        """Remove a version; the registry can never be left headless.

        Unregistering the active version raises by default.  With
        ``fallback=True`` it instead atomically activates the most
        recently registered remaining version — unless ``name`` is the
        only one, which still raises (a registry must always be able to
        answer :meth:`active`).
        """
        with self._lock:
            if name not in self._versions:
                raise UnknownModelError(name)
            if name == self._active:
                others = [n for n in self._versions if n != name]
                if not others or not fallback:
                    raise ValueError(
                        f"model {name!r} is active; activate another version "
                        "first" + (" (no other version to fall back to)"
                                   if fallback and not others else ""))
                # dicts preserve insertion order: the last remaining key is
                # the most recently registered version.
                self._active = others[-1]
            del self._versions[name]
        inference.bump_generation()

    # ------------------------------------------------------------------ #
    # Lookup and hot swap
    # ------------------------------------------------------------------ #
    def activate(self, name: str) -> None:
        """Atomically make ``name`` the serving model."""
        with self._lock:
            if name not in self._versions:
                raise UnknownModelError(name)
            self._active = name
        inference.bump_generation()

    def active(self) -> tuple[str, HIRE]:
        """The ``(name, model)`` pair requests are currently scored with."""
        with self._lock:
            if self._active is None:
                raise UnknownModelError("no model registered")
            return self._active, self._versions[self._active][1]

    def get(self, name: str) -> HIRE:
        with self._lock:
            if name not in self._versions:
                raise UnknownModelError(name)
            return self._versions[name][1]

    def version(self, name: str) -> ModelVersion:
        with self._lock:
            if name not in self._versions:
                raise UnknownModelError(name)
            return self._versions[name][0]

    @property
    def active_name(self) -> str | None:
        with self._lock:
            return self._active

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._versions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._versions)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._versions
