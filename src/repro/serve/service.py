"""The :class:`PredictionService` façade: online HIRE inference.

Ties the serving pieces together behind ``submit()`` / ``predict()`` /
``close()``:

* requests enter a bounded queue (:mod:`~repro.serve.workers`) and are
  coalesced into micro-batches (:mod:`~repro.serve.batcher`);
* context assembly reuses the offline predictor's code path
  (:func:`repro.core.assemble_user_chunks`) with the deterministic
  per-request RNG derivation (:func:`repro.core.task_chunk_rng`), so
  served scores are **bit-identical** to a sequential
  ``HIREPredictor(per_task_rng=True)`` — regardless of batch composition,
  worker count, or cache state;
* assembled contexts are memoised in an LRU+TTL cache
  (:mod:`~repro.serve.cache`), invalidated whenever the visible rating
  graph is updated;
* all same-shape contexts of a batch run through one stacked
  :meth:`HIRE.forward_many` pass (bit-identical per slice), and the
  opt-in ``share_contexts`` mode additionally packs several cold users
  into the rows of a *single* n × m context (faster still, but sampled
  jointly — documented as not bit-identical to per-user scoring);
* latency histograms (p50/p99), queue-depth gauges and cache hit-rate
  counters stream into a :class:`repro.obs.MetricsRegistry`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from concurrent.futures import Future

import numpy as np

from .. import nn, obs
from ..core.model import HIRE
from ..core.predictor import (
    assemble_user_chunks,
    build_serving_graph,
    task_chunk_rng,
)
from ..core.sampling import ContextSampler, NeighborhoodSampler
from ..core.context import build_context
from ..data.bipartite import RatingGraph
from .batcher import MicroBatcher, PredictRequest, group_requests
from .cache import ContextCache, context_cache_key
from .errors import QueueFullError, RequestError, ServiceClosedError
from .registry import ModelRegistry
from .workers import WorkerPool

__all__ = ["PredictionService", "ServiceConfig"]


@dataclass
class ServiceConfig:
    """Knobs of the online prediction service."""

    # Context assembly (mirrors HIREPredictor's defaults).
    context_users: int = 32
    context_items: int = 32
    reveal_fraction: float = 0.1
    num_context_samples: int = 1
    seed: int = 0
    # Micro-batching.
    max_batch_size: int = 8
    max_wait_seconds: float = 0.002
    queue_size: int = 64
    num_workers: int = 1
    # Context cache.
    cache_enabled: bool = True
    cache_entries: int = 2048
    cache_ttl_seconds: float | None = None
    # Pack several cold users into one shared n x m context (approximate:
    # jointly sampled contexts differ from per-user ones, so scores are not
    # bit-identical to sequential prediction; see docs/serving.md).
    share_contexts: bool = False
    # Run forwards through the graph-free repro.nn.inference engine when
    # supported (bitwise identical to the Tensor path); False is the escape
    # hatch back to no_grad Tensor forwards.
    use_inference_engine: bool = True
    metrics_prefix: str = "serve"

    def __post_init__(self):
        if self.num_context_samples < 1:
            raise ValueError("num_context_samples must be >= 1")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")


class PredictionService:
    """Online rating prediction over a trained (registry of) HIRE model(s).

    Parameters
    ----------
    models:
        A :class:`~repro.serve.registry.ModelRegistry` (hot-swappable) or a
        bare :class:`HIRE`.
    graph:
        The visible rating graph requests are scored against (warm training
        ratings plus any revealed cold supports).
    candidate_users / candidate_items:
        Entity pools the context sampler may draw from.
    """

    def __init__(self, models: ModelRegistry | HIRE, graph: RatingGraph,
                 candidate_users: np.ndarray, candidate_items: np.ndarray,
                 sampler: ContextSampler | None = None,
                 config: ServiceConfig | None = None,
                 metrics: obs.MetricsRegistry | None = None):
        self.config = config or ServiceConfig()
        self._registry = models if isinstance(models, ModelRegistry) else None
        self._model = None if self._registry is not None else models
        if self._model is not None:
            self._model.eval()
        self.sampler = sampler or NeighborhoodSampler()
        self.metrics = metrics if metrics is not None else obs.MetricsRegistry()
        self.cache = (ContextCache(self.config.cache_entries,
                                   self.config.cache_ttl_seconds)
                      if self.config.cache_enabled else None)
        self._graph_lock = threading.Lock()
        # (graph, candidate_users, candidate_items, generation) swapped as
        # one tuple so a batch always sees a consistent view.
        self._graph_state = (
            graph,
            np.asarray(candidate_users, dtype=np.int64),
            np.asarray(candidate_items, dtype=np.int64),
            0,
        )
        self._batcher = MicroBatcher(self.config.max_batch_size,
                                     self.config.max_wait_seconds,
                                     self.config.queue_size)
        self._pool = WorkerPool(self._worker_loop, self.config.num_workers)
        self._closed = False
        self._pool.start()

    @classmethod
    def from_split(cls, models, split, tasks, **kwargs) -> "PredictionService":
        """Build the serving state exactly like :class:`HIREPredictor` does."""
        graph, candidate_users, candidate_items = build_serving_graph(split, tasks)
        return cls(models, graph, candidate_users, candidate_items, **kwargs)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, user: int, item_ids, support_items=None) -> Future:
        """Enqueue one prediction; resolves to scores in ``item_ids`` order.

        Never blocks: raises :class:`QueueFullError` when the bounded queue
        is full (load shedding), :class:`ServiceClosedError` after
        :meth:`close`, and :class:`RequestError` for requests that can
        never succeed.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        user = int(user)
        item_ids = np.asarray(item_ids, dtype=np.int64).ravel()
        graph = self._graph_state[0]
        if item_ids.size == 0:
            raise RequestError("a request needs at least one item")
        if not 0 <= user < graph.num_users:
            raise RequestError(f"user {user} outside [0, {graph.num_users})")
        if (item_ids < 0).any() or (item_ids >= graph.num_items).any():
            raise RequestError(f"item ids outside [0, {graph.num_items})")
        for item in item_ids:
            if graph.has_rating(user, int(item)):
                raise RequestError(
                    f"({user}, {int(item)}) is already rated in the visible "
                    "graph; serving scores unrated pairs only")
        if support_items is None:
            support_items = graph.items_of_user(user)
        support_items = np.asarray(support_items, dtype=np.int64).ravel()

        request = PredictRequest(user=user, item_ids=item_ids,
                                 support_items=support_items)
        try:
            self._batcher.submit(request)
        except (QueueFullError, ServiceClosedError):
            self._counter("rejected_total").inc()
            raise
        self._counter("requests_total").inc()
        self._gauge("queue_depth").set(self._batcher.depth)
        return request.future

    def predict(self, user: int, item_ids, support_items=None,
                timeout: float | None = 30.0) -> np.ndarray:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(user, item_ids, support_items).result(timeout)

    # ------------------------------------------------------------------ #
    # Graph updates
    # ------------------------------------------------------------------ #
    def update_ratings(self, ratings: np.ndarray) -> int:
        """Add (user, item, rating) triples to the visible graph.

        Builds a fresh immutable graph, extends the candidate pools with
        the new entities, bumps the graph generation and invalidates the
        context cache (cached neighbourhoods may have changed).  Returns
        the new generation number.
        """
        ratings = np.asarray(ratings, dtype=np.float64).reshape(-1, 3)
        with self._graph_lock:
            graph, candidate_users, candidate_items, generation = self._graph_state
            combined = np.concatenate([graph.triples(), ratings])
            new_graph = RatingGraph(combined, graph.num_users, graph.num_items)
            self._graph_state = (
                new_graph,
                np.union1d(candidate_users, ratings[:, 0].astype(np.int64)),
                np.union1d(candidate_items, ratings[:, 1].astype(np.int64)),
                generation + 1,
            )
        if self.cache is not None:
            self.cache.invalidate()
        return self._graph_state[3]

    @property
    def graph_generation(self) -> int:
        return self._graph_state[3]

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop intake and shut the workers down.

        ``drain=True`` processes every queued request before returning;
        ``drain=False`` fails the still-queued requests' futures with
        :class:`ServiceClosedError`.  Either way every submitted request's
        future resolves exactly once — none are lost.
        """
        if self._closed:
            return
        self._closed = True
        self._batcher.close()
        if not drain:
            leftovers = self._batcher.drain()
            error = ServiceClosedError("service closed before execution")
            for request in leftovers:
                if not request.future.done():
                    request.future.set_exception(error)
        self._pool.join(timeout)
        self._pool.close(1.0)

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Queue, cache, and metric state as one JSON-able snapshot."""
        out = {
            "queue_depth": self._batcher.depth,
            "graph_generation": self.graph_generation,
            "metrics": self.metrics.snapshot(),
        }
        if self.cache is not None:
            out["cache"] = {**self.cache.stats.snapshot(), "entries": len(self.cache)}
        return out

    def report(self) -> str:
        """The service's metrics as an ``obs.report`` text table."""
        lines = [obs.render_metrics_table(self.metrics)]
        if self.cache is not None:
            snap = self.cache.stats.snapshot()
            lines.append("")
            lines.append(
                f"context cache: {len(self.cache)} entries"
                f"   hit rate {snap['hit_rate'] * 100:.1f}%"
                f"   ({snap['hits']} hits / {snap['misses']} misses,"
                f" {snap['evictions']} evicted)")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Worker internals
    # ------------------------------------------------------------------ #
    def _metric_name(self, name: str) -> str:
        return f"{self.config.metrics_prefix}.{name}"

    def _counter(self, name: str):
        return self.metrics.counter(self._metric_name(name))

    def _gauge(self, name: str):
        return self.metrics.gauge(self._metric_name(name))

    def _histogram(self, name: str):
        return self.metrics.histogram(self._metric_name(name))

    def _resolve_model(self) -> HIRE:
        if self._registry is not None:
            return self._registry.active()[1]
        return self._model

    def _worker_loop(self, stop_event) -> bool | None:
        try:
            batch = self._batcher.next_batch(timeout=0.05)
        except ServiceClosedError:
            return False  # closed and drained: exit
        if not batch:
            return None  # idle tick; keep polling (or notice stop_event)
        self._process_batch(batch)
        return None

    def _process_batch(self, batch: list[PredictRequest]) -> None:
        self._gauge("queue_depth").set(self._batcher.depth)
        self._histogram("batch_size").observe(len(batch))
        self._counter("batches_total").inc()
        try:
            model = self._resolve_model()
            graph_state = self._graph_state
            groups = group_requests(batch)
            if self.config.share_contexts:
                shared, solo = self._partition_for_sharing(groups)
            else:
                shared, solo = [], groups

            plans = []
            with obs.span("serve/assemble"):
                for key, requests in solo:
                    plans.append((requests, self._chunks_for(requests[0],
                                                             graph_state)))
            with obs.span("serve/forward"):
                scores_by_plan = self._score_plans(model, plans)
                if shared:
                    shared_scores = self._score_shared(model, shared, graph_state)

            now = time.perf_counter()
            for (requests, _), scores in zip(plans, scores_by_plan):
                self._resolve(requests, scores, now)
            if shared:
                for (key, requests), scores in zip(shared, shared_scores):
                    self._resolve(requests, scores, now)
        except Exception as error:  # fail the whole batch, never hang callers
            self._counter("failed_total").inc(len(batch))
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(error)

    def _resolve(self, requests: list[PredictRequest], scores: np.ndarray,
                 now: float) -> None:
        latency = self._histogram("latency_seconds")
        for index, request in enumerate(requests):
            # Coalesced requests each get their own array (no sharing).
            request.future.set_result(scores if index == 0 else scores.copy())
            latency.observe(now - request.enqueued_at)
            self._counter("completed_total").inc()

    # -- exact path ---------------------------------------------------- #
    def _chunks_for(self, request: PredictRequest, graph_state) -> list:
        """Per-sample assembled chunks for one request (cache-aware)."""
        graph, candidate_users, candidate_items, generation = graph_state
        cfg = self.config
        key = context_cache_key(generation, self.sampler.name, request.user,
                                request.item_ids, request.support_items,
                                cfg.context_users, cfg.context_items,
                                cfg.reveal_fraction, cfg.seed)
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                self._counter("cache_hits_total").inc()
                return cached
            self._counter("cache_misses_total").inc()

        samples = []
        for sample_index in range(cfg.num_context_samples):
            def rng_factory(start, _sample=sample_index):
                return task_chunk_rng(cfg.seed, request.user, _sample, start)
            samples.append(assemble_user_chunks(
                graph, self.sampler, request.user,
                request.item_ids, request.support_items,
                context_users=cfg.context_users,
                context_items=cfg.context_items,
                reveal_fraction=cfg.reveal_fraction,
                candidate_users=candidate_users,
                candidate_items=candidate_items,
                rng_factory=rng_factory,
            ))
        if self.cache is not None:
            self.cache.put(key, samples)
        return samples

    def _score_plans(self, model: HIRE, plans) -> list[np.ndarray]:
        """Score every plan's chunks, stacking same-shape contexts into one
        ``forward_many`` pass (bit-identical per slice to solo forwards)."""
        entries = []  # (plan_index, sample_index, chunk)
        for plan_index, (_requests, samples) in enumerate(plans):
            for sample_index, chunks in enumerate(samples):
                for chunk in chunks:
                    entries.append((plan_index, sample_index, chunk))
        if not entries:
            return []

        by_shape: dict[tuple[int, int], list] = {}
        for entry in entries:
            chunk = entry[2]
            by_shape.setdefault((chunk.context.n, chunk.context.m), []).append(entry)

        use_engine = (self.config.use_inference_engine
                      and nn.inference.engine_supported(model))
        predicted: dict[int, np.ndarray] = {}
        with nn.no_grad():
            for shape_entries in by_shape.values():
                contexts = [chunk.context for _, _, chunk in shape_entries]
                if use_engine:
                    if len(contexts) == 1:
                        outputs = nn.inference.forward_inference(
                            model, contexts[0])[None]
                    else:
                        outputs = nn.inference.forward_inference_many(
                            model, contexts)
                elif len(contexts) == 1:
                    outputs = model.forward(contexts[0]).data[None]
                else:
                    outputs = model.forward_many(contexts).data
                # Extract each chunk's scores immediately: engine outputs
                # are views into a reused workspace, overwritten by the
                # next shape group's forward.
                for (_, _, chunk), output in zip(shape_entries, outputs):
                    predicted[id(chunk)] = output[chunk.user_row, chunk.cols]

        scores_by_plan: list[np.ndarray] = []
        for plan_index, (requests, samples) in enumerate(plans):
            num_items = len(requests[0].item_ids)
            total: np.ndarray | None = None
            for chunks in samples:
                part = np.empty(num_items, dtype=np.float64)
                for chunk in chunks:
                    part[chunk.start:chunk.start + len(chunk)] = (
                        predicted[id(chunk)])
                # Same accumulation order as HIREPredictor.predict_task, so
                # multi-sample averages stay bit-identical too.
                total = part if total is None else total + part
            scores_by_plan.append(total / len(samples))
        return scores_by_plan

    # -- shared-context path (opt-in, approximate) --------------------- #
    def _partition_for_sharing(self, groups):
        """Greedily pick requests that fit together in one shared context."""
        cfg = self.config
        # Leave half the user budget for sampled warm neighbours.
        max_shared_users = max(cfg.context_users // 2, 1)
        shared, solo, used_items = [], [], 0
        for key, requests in groups:
            request = requests[0]
            reserve = min(len(request.support_items),
                          max(cfg.context_items // 4, 1))
            need = len(request.item_ids) + reserve
            fits = (len(shared) < max_shared_users
                    and used_items + need <= cfg.context_items
                    and cfg.num_context_samples == 1)
            if fits:
                shared.append((key, requests))
                used_items += need
            else:
                solo.append((key, requests))
        if len(shared) < 2:  # nothing gained by sharing a single request
            return [], shared + solo
        return shared, solo

    def _score_shared(self, model: HIRE, shared, graph_state) -> list[np.ndarray]:
        """One n × m context whose rows serve several cold users at once."""
        graph, candidate_users, candidate_items, generation = graph_state
        cfg = self.config
        requests = [entry[1][0] for entry in shared]
        target_users = np.unique(np.array([r.user for r in requests],
                                          dtype=np.int64))
        pieces = []
        for request in requests:
            reserve = min(len(request.support_items),
                          max(cfg.context_items // 4, 1))
            pieces.append(request.item_ids)
            pieces.append(request.support_items[:reserve])
        target_items = np.unique(np.concatenate(pieces))

        # Jointly sampled -> deterministic in the set of packed users.
        rng = np.random.default_rng(
            [cfg.seed, generation, len(target_items)] + target_users.tolist())
        users, items = self.sampler.sample(
            graph, target_users=target_users, target_items=target_items,
            n=cfg.context_users, m=cfg.context_items, rng=rng,
            candidate_users=candidate_users, candidate_items=candidate_items)
        users = _ensure_members(users, target_users)
        items = _ensure_members(items, target_items)

        user_row = {int(user): row for row, user in enumerate(users)}
        item_pos = {int(item): col for col, item in enumerate(items)}
        forced_reveal = np.zeros((len(users), len(items)), dtype=bool)
        for request in requests:
            row = user_row[request.user]
            for item in request.support_items:
                col = item_pos.get(int(item))
                if col is not None and graph.has_rating(request.user, int(item)):
                    forced_reveal[row, col] = True
        context = build_context(graph, users, items, rng,
                                reveal_fraction=cfg.reveal_fraction,
                                forced_reveal=forced_reveal)
        with nn.no_grad():
            if (self.config.use_inference_engine
                    and nn.inference.engine_supported(model)):
                output = nn.inference.forward_inference(model, context)
            else:
                output = model.forward(context).data

        self._counter("shared_context_users_total").inc(len(requests))
        scores = []
        for request in requests:
            row = user_row[request.user]
            cols = np.array([item_pos[int(i)] for i in request.item_ids],
                            dtype=np.int64)
            assert not context.observed[row, cols].any(), (
                "query ratings leaked into the shared serving context")
            scores.append(output[row, cols].astype(np.float64))
        return scores


def _ensure_members(selected: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Group variant of :func:`repro.core.ensure_targets`: force every
    target entity into ``selected`` without growing it."""
    selected = np.asarray(selected, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    missing = targets[~np.isin(targets, selected)]
    if missing.size:
        keep = selected[~np.isin(selected, missing[: len(selected)])]
        selected = np.concatenate([missing, keep])[: len(selected)]
    return selected
