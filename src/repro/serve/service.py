"""The :class:`PredictionService` façade: online HIRE inference.

Ties the serving pieces together behind ``submit()`` / ``predict()`` /
``close()``:

* requests enter a bounded queue (:mod:`~repro.serve.workers`) and are
  coalesced into micro-batches (:mod:`~repro.serve.batcher`);
* context assembly reuses the offline predictor's code path
  (:func:`repro.core.assemble_user_chunks`) with the deterministic
  per-request RNG derivation (:func:`repro.core.task_chunk_rng`), so
  served scores are **bit-identical** to a sequential
  ``HIREPredictor(per_task_rng=True)`` — regardless of batch composition,
  worker count, or cache state;
* assembled contexts are memoised in an LRU+TTL cache
  (:mod:`~repro.serve.cache`), invalidated **fine-grained** on graph
  updates: the shared :class:`~repro.serve.dataplane.GraphStore` applies
  rating deltas incrementally (:meth:`RatingGraph.apply_deltas`) and
  reports exactly which entities changed, so only entries whose assembly
  read a changed user/item are evicted — entries for untouched
  neighbourhoods survive (keys carry the store *epoch*, which bumps only
  on full invalidations such as candidate-pool growth);
* contexts of a batch are grouped into *shape buckets* — ``(n, m)``
  rounded up to ``pack_bucket`` multiples, bounded by ``pack_max_waste``
  — and each bucket executes as one padded, stacked
  :func:`repro.nn.inference.forward_inference_packed` call whose real
  rows are bitwise identical to unpadded per-request forwards (the
  historical ``share_contexts`` flag now aliases this exact path; the old
  approximate jointly-sampled mode is retired);
* a warm-entity :class:`repro.nn.inference.EmbeddingStore` reuses encoder
  attribute rows across requests, dropped on registry hot swaps and
  invalidated per-entity on ``update_ratings``;
* latency histograms (p50/p99), queue-depth gauges, pad-waste/bucket
  occupancy and cache hit-rate counters stream into a
  :class:`repro.obs.MetricsRegistry`;
* the telemetry plane rides along, fully passive: per-request stage
  traces (:mod:`repro.obs.trace`), rolling windowed rates/quantiles
  (:mod:`repro.obs.windows`), SLO evaluation surfaced by :meth:`health`
  (:mod:`repro.obs.slo`), and an optional background JSONL exporter
  (:mod:`repro.obs.export`) — everything on one injectable clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from concurrent.futures import Future

import numpy as np

from .. import nn, obs
from ..core.model import HIRE
from ..core.predictor import (
    assemble_user_chunks,
    build_serving_graph,
    task_chunk_rng,
)
from ..core.sampling import ContextSampler, NeighborhoodSampler
from ..data.bipartite import RatingGraph
from .batcher import MicroBatcher, PredictRequest, group_requests
from .cache import (
    ContextCache,
    FrontierBinding,
    FrontierCache,
    context_cache_key,
    frontier_cache_key,
)
from .dataplane import GraphStore, UpdateResult
from .errors import QueueFullError, RequestError, ServiceClosedError
from .registry import ModelRegistry
from .workers import WorkerPool

__all__ = ["PredictionService", "ServiceConfig"]


@dataclass
class ServiceConfig:
    """Knobs of the online prediction service."""

    # Context assembly (mirrors HIREPredictor's defaults).
    context_users: int = 32
    context_items: int = 32
    reveal_fraction: float = 0.1
    num_context_samples: int = 1
    seed: int = 0
    # Micro-batching.
    max_batch_size: int = 8
    max_wait_seconds: float = 0.002
    queue_size: int = 64
    num_workers: int = 1
    # Context cache.
    cache_enabled: bool = True
    cache_entries: int = 2048
    cache_ttl_seconds: float | None = None
    # Frontier cache: memoise sampled BFS frontiers per (sample, chunk) so
    # hot users skip the BFS even when the request-level context cache
    # misses (bit-identical via rng-state restoration; invalidated
    # entity-wise like the context cache — see docs/adaptive_context.md).
    frontier_cache_enabled: bool = True
    frontier_cache_entries: int = 4096
    # Adaptive context budgets: when on, requests without explicit budget
    # overrides get per-request (n, m) from budget_ladder — a tuple of
    # (queue_depth_threshold, context_users, context_items) rungs, first
    # threshold 0, thresholds strictly increasing, budgets non-increasing
    # (shrink under load, grow back when the queue drains).  The deepest
    # rung whose threshold <= the current queue depth wins.  Degraded
    # predictions stay bit-identical to sequential prediction at the same
    # (n, m); the measured quality/latency trade per rung comes from the
    # Pareto bench (BENCH_pareto.json).
    adaptive_budgets: bool = False
    budget_ladder: tuple = ()
    # Incremental data plane: apply rating deltas through
    # RatingGraph.apply_deltas (O(deltas), copy-on-write) instead of a full
    # rebuild, with fine-grained per-entity cache invalidation.  False
    # restores the rebuild-everything/invalidate-everything behaviour.
    incremental_updates: bool = True
    # Belt-and-braces: rebuild from scratch on every update too and assert
    # the incremental graph bitwise identical (the bench runs with this on).
    incremental_verify: bool = False
    # Padded packing: contexts whose (n, m) land in the same bucket —
    # dimensions rounded up to the next pack_bucket multiple, unless that
    # inflates the cell count by more than pack_max_waste — execute as one
    # padded stacked plan call.  Exact: real rows are bitwise identical to
    # unpadded per-request forwards (see docs/serving.md).
    pack_contexts: bool = True
    pack_bucket: int = 8
    pack_max_waste: float = 1.0
    # Historical alias for the packed path.  Earlier versions implemented
    # share_contexts as an approximate jointly-sampled mode; that mode is
    # retired — the flag now simply forces pack_contexts on and serving
    # stays bit-identical to sequential prediction.
    share_contexts: bool = False
    # Reuse encoder attribute rows for warm entities across requests
    # (repro.nn.inference.EmbeddingStore; bitwise identical, invalidated
    # on hot swap and update_ratings).
    embed_store_enabled: bool = True
    # Run forwards through the graph-free repro.nn.inference engine when
    # supported (bitwise identical to the Tensor path); False is the escape
    # hatch back to no_grad Tensor forwards.
    use_inference_engine: bool = True
    metrics_prefix: str = "serve"
    # Telemetry plane (all passive — see docs/observability.md).
    # Per-request stage tracing into a bounded ring buffer; trace_sink
    # optionally mirrors completed traces to a JSONL file.
    trace_enabled: bool = True
    trace_buffer: int = 256
    trace_sink: str | None = None
    # Rolling windows for rates/quantiles and burn-rate SLO evaluation:
    # the long window is the budget horizon, the short window the "is it
    # bad right now" probe (it also sets the window slice granularity).
    window_seconds: float = 60.0
    short_window_seconds: float = 10.0
    # SLO rules evaluated by health(); () = obs.default_serve_rules().
    slo_rules: tuple = ()
    # Background telemetry export (None disables the exporter thread).
    export_path: str | None = None
    export_interval_seconds: float = 5.0

    def __post_init__(self):
        if self.num_context_samples < 1:
            raise ValueError("num_context_samples must be >= 1")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.pack_bucket < 1:
            raise ValueError("pack_bucket must be >= 1")
        if self.pack_max_waste < 0:
            raise ValueError("pack_max_waste must be >= 0")
        if self.trace_buffer < 1:
            raise ValueError("trace_buffer must be >= 1")
        if self.window_seconds <= 0 or self.short_window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.short_window_seconds > self.window_seconds:
            raise ValueError("short_window_seconds must be <= window_seconds")
        if self.export_interval_seconds <= 0:
            raise ValueError("export_interval_seconds must be positive")
        if self.frontier_cache_entries < 1:
            raise ValueError("frontier_cache_entries must be >= 1")
        self.budget_ladder = tuple(
            (int(depth), int(n), int(m)) for depth, n, m in self.budget_ladder)
        if self.adaptive_budgets:
            if not self.budget_ladder:
                raise ValueError(
                    "adaptive_budgets needs a budget_ladder of "
                    "(queue_depth, context_users, context_items) rungs")
            if self.budget_ladder[0][0] != 0:
                raise ValueError("the first ladder rung must have queue "
                                 "depth threshold 0 (the idle budgets)")
            for (d0, n0, m0), (d1, n1, m1) in zip(self.budget_ladder,
                                                  self.budget_ladder[1:]):
                if d1 <= d0:
                    raise ValueError(
                        "ladder queue-depth thresholds must be strictly "
                        "increasing")
                if n1 > n0 or m1 > m0:
                    raise ValueError(
                        "ladder budgets must be non-increasing with depth "
                        "(deeper queue -> smaller contexts)")
            if any(n < 2 or m < 2 for _, n, m in self.budget_ladder):
                raise ValueError("ladder context budgets must be >= 2")
        if self.share_contexts:
            self.pack_contexts = True


class PredictionService:
    """Online rating prediction over a trained (registry of) HIRE model(s).

    Parameters
    ----------
    models:
        A :class:`~repro.serve.registry.ModelRegistry` (hot-swappable) or a
        bare :class:`HIRE`.
    graph:
        The visible rating graph requests are scored against (warm training
        ratings plus any revealed cold supports).
    candidate_users / candidate_items:
        Entity pools the context sampler may draw from.
    graph_store:
        An existing :class:`~repro.serve.dataplane.GraphStore` to share
        (the :class:`~repro.serve.shard.ShardRouter` passes one store to
        every shard so all shards serve one consistent graph).  ``None``
        builds a private store from ``graph`` and the candidate pools.
    """

    def __init__(self, models: ModelRegistry | HIRE, graph: RatingGraph,
                 candidate_users: np.ndarray, candidate_items: np.ndarray,
                 sampler: ContextSampler | None = None,
                 config: ServiceConfig | None = None,
                 metrics: obs.MetricsRegistry | None = None,
                 rating_log=None,
                 graph_store: GraphStore | None = None,
                 clock=time.monotonic):
        self.config = config or ServiceConfig()
        self._registry = models if isinstance(models, ModelRegistry) else None
        self._model = None if self._registry is not None else models
        if self._model is not None:
            self._model.eval()
        self.sampler = sampler or NeighborhoodSampler()
        self.metrics = metrics if metrics is not None else obs.MetricsRegistry()
        # One injectable clock for everything time-related on the serve
        # path: batcher deadlines, request stamps, latency histograms,
        # rolling windows, trace timings.  One timebase means the numbers
        # agree with each other — and with a fake clock in tests.
        self._clock = clock
        self.cache = (ContextCache(self.config.cache_entries,
                                   self.config.cache_ttl_seconds)
                      if self.config.cache_enabled else None)
        self.frontier_cache = (
            FrontierCache(self.config.frontier_cache_entries,
                          self.config.cache_ttl_seconds)
            if self.config.frontier_cache_enabled else None)
        if graph_store is not None:
            if rating_log is not None:
                raise ValueError(
                    "attach the rating_log to the shared GraphStore, not to "
                    "individual services (it would tee every delta N times)")
            self._store = graph_store
        else:
            # The store owns the optional repro.online.RatingLog tee:
            # apply() appends every *applied* delta, so the incremental-
            # training loop consumes exactly what the graph absorbed.
            self._store = GraphStore(
                graph,
                np.asarray(candidate_users, dtype=np.int64),
                np.asarray(candidate_items, dtype=np.int64),
                incremental=self.config.incremental_updates,
                verify=self.config.incremental_verify,
                rating_log=rating_log)
        self._store.subscribe(self._on_graph_update)
        self._embed_store = None
        # Bucket-homogeneous batches keep each micro-batch a single packed
        # plan execution downstream; with uniform budgets every request
        # shares one bucket, so dispatch matches the unbucketed batcher.
        bucket_key = self._request_bucket if self.config.pack_contexts else None
        self._batcher = MicroBatcher(self.config.max_batch_size,
                                     self.config.max_wait_seconds,
                                     self.config.queue_size,
                                     clock=clock,
                                     bucket_key=bucket_key)
        self._init_telemetry()
        self._pool = WorkerPool(self._worker_loop, self.config.num_workers)
        self._closed = False
        self._pool.start()

    def _init_telemetry(self) -> None:
        """Build the trace / window / SLO / export plane (all passive)."""
        cfg = self.config
        self._slo_rules = tuple(cfg.slo_rules) or obs.default_serve_rules()
        # Rolling windows sliced at short-window granularity so the short
        # window is exactly one slice of the long one.
        self._num_slices = max(1, round(cfg.window_seconds
                                        / cfg.short_window_seconds))
        self._window_latency = self._windowed_histogram("window.latency_seconds")
        self._window_requests = self._windowed_counter("window.requests_total")
        self._window_rejected = self._windowed_counter("window.rejected_total")
        self._window_completed = self._windowed_counter("window.completed_total")
        self._window_cache_hits = self._windowed_counter("window.cache_hits_total")
        self._window_cache_misses = self._windowed_counter(
            "window.cache_misses_total")
        # Assembly-plane windows: per-batch assembly time plus the adaptive
        # budget ladder's decisions (see docs/adaptive_context.md).
        self._window_assemble_seconds = self._windowed_histogram(
            "assemble.window.seconds")
        self._window_budget_users = self._windowed_histogram(
            "assemble.window.budget_users")
        self._window_budget_items = self._windowed_histogram(
            "assemble.window.budget_items")
        self._window_degraded = self._windowed_counter(
            "assemble.window.degraded_total")
        self.tracer = (obs.Tracer(capacity=cfg.trace_buffer,
                                  sink_path=cfg.trace_sink,
                                  clock=self._clock)
                       if cfg.trace_enabled else None)
        self._stage_windows = ({stage: self._windowed_histogram(
                                    f"stage.{stage}_seconds")
                                for stage in obs.TRACE_STAGES}
                               if cfg.trace_enabled else {})
        self.exporter = (obs.TelemetryExporter(
                             cfg.export_path, registry=self.metrics,
                             interval_seconds=cfg.export_interval_seconds,
                             sources={"health": self.health},
                             clock=self._clock)
                         if cfg.export_path is not None else None)

    @classmethod
    def from_split(cls, models, split, tasks, **kwargs) -> "PredictionService":
        """Build the serving state exactly like :class:`HIREPredictor` does."""
        graph, candidate_users, candidate_items = build_serving_graph(split, tasks)
        return cls(models, graph, candidate_users, candidate_items, **kwargs)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, user: int, item_ids, support_items=None, *,
               context_users: int | None = None,
               context_items: int | None = None) -> Future:
        """Enqueue one prediction; resolves to scores in ``item_ids`` order.

        ``context_users`` / ``context_items`` override the service's context
        budgets for this request (latency/quality knob per caller); requests
        with nearby budgets still stack into one padded forward via shape
        buckets.  With ``adaptive_budgets`` on, requests *without* explicit
        overrides get their budgets from the configured ladder instead,
        keyed by the queue depth at admission (explicit overrides always
        win — the caller asked for a specific quality point).

        Never blocks: raises :class:`QueueFullError` when the bounded queue
        is full (load shedding), :class:`ServiceClosedError` after
        :meth:`close`, and :class:`RequestError` for requests that can
        never succeed.
        """
        return self.submit_request(user, item_ids, support_items,
                                   context_users=context_users,
                                   context_items=context_items).future

    def _ladder_budgets(self, depth: int) -> tuple[int, tuple[int, int]]:
        """The deepest ladder rung whose threshold <= ``depth``, as
        ``(rung_index, (context_users, context_items))``."""
        ladder = self.config.budget_ladder
        rung = 0
        for index, (threshold, _, _) in enumerate(ladder):
            if depth >= threshold:
                rung = index
        _, n, m = ladder[rung]
        return rung, (n, m)

    def submit_request(self, user: int, item_ids, support_items=None, *,
                       context_users: int | None = None,
                       context_items: int | None = None) -> PredictRequest:
        """:meth:`submit`, returning the enqueued :class:`PredictRequest`.

        The request carries the *effective* ``context_users`` /
        ``context_items`` (after the adaptive ladder, when it applied) and
        the future — which is what lets a caller replay the exact degraded
        budgets through a sequential reference and verify bit-identity.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        user = int(user)
        for name, value in (("context_users", context_users),
                            ("context_items", context_items)):
            if value is not None and int(value) < 2:
                raise RequestError(f"{name} override must be >= 2")
        item_ids = np.asarray(item_ids, dtype=np.int64).ravel()
        graph_state = self._store.state
        graph = graph_state.graph
        if item_ids.size == 0:
            raise RequestError("a request needs at least one item")
        if not 0 <= user < graph.num_users:
            raise RequestError(f"user {user} outside [0, {graph.num_users})")
        if (item_ids < 0).any() or (item_ids >= graph.num_items).any():
            raise RequestError(f"item ids outside [0, {graph.num_items})")
        for item in item_ids:
            if graph.has_rating(user, int(item)):
                raise RequestError(
                    f"({user}, {int(item)}) is already rated in the visible "
                    "graph; serving scores unrated pairs only")
        if support_items is None:
            support_items = graph.items_of_user(user)
        support_items = np.asarray(support_items, dtype=np.int64).ravel()

        rung = None
        if (self.config.adaptive_budgets and context_users is None
                and context_items is None):
            rung, (context_users, context_items) = self._ladder_budgets(
                self._batcher.depth)

        request = PredictRequest(
            user=user, item_ids=item_ids, support_items=support_items,
            context_users=None if context_users is None else int(context_users),
            context_items=None if context_items is None else int(context_items),
            graph_state=graph_state)
        if self.tracer is not None:
            # Attached before the queue so a worker can never race a
            # traceless request; rejected requests just drop their trace.
            request.trace = self.tracer.begin()
        try:
            self._batcher.submit(request)
        except (QueueFullError, ServiceClosedError):
            self._counter("rejected_total").inc()
            self._window_rejected.inc()
            raise
        self._counter("requests_total").inc()
        self._window_requests.inc()
        self._gauge("queue_depth").set(self._batcher.depth)
        if rung is not None:
            self._gauge("assemble.budget_rung").set(rung)
            self._window_budget_users.observe(context_users)
            self._window_budget_items.observe(context_items)
            if rung > 0:
                self._counter("assemble.degraded_total").inc()
                self._window_degraded.inc()
        return request

    def predict(self, user: int, item_ids, support_items=None,
                timeout: float | None = 30.0, *,
                context_users: int | None = None,
                context_items: int | None = None) -> np.ndarray:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(user, item_ids, support_items,
                           context_users=context_users,
                           context_items=context_items).result(timeout)

    def predict_many(self, requests, timeout: float = 60.0) -> list[np.ndarray]:
        """Submit a sequence of workload-style requests, gather in order.

        Each element needs ``user`` / ``item_ids`` / ``support_items``
        attributes plus optional ``context_users`` / ``context_items``
        budget overrides (:class:`~repro.serve.workload.WorkloadRequest`
        fits).  All requests are enqueued before any result is awaited, so
        micro-batching still coalesces across them.
        """
        futures = [
            self.submit(request.user, request.item_ids, request.support_items,
                        context_users=getattr(request, "context_users", None),
                        context_items=getattr(request, "context_items", None))
            for request in requests
        ]
        return [future.result(timeout) for future in futures]

    # ------------------------------------------------------------------ #
    # Graph updates
    # ------------------------------------------------------------------ #
    def update_ratings(self, ratings: np.ndarray) -> int:
        """Apply (user, item, rating) deltas to the visible graph.

        Deltas are deduped before application: within the batch the most
        recent rating per ``(user, item)`` pair wins (a re-rated pair keeps
        only its last value), and triples that restate the graph's current
        value are no-ops.  When anything survives, the shared
        :class:`~repro.serve.dataplane.GraphStore` derives the next graph —
        incrementally via :meth:`RatingGraph.apply_deltas` by default — the
        candidate pools grow with any new entities, the graph generation
        bumps, and the applied deltas tee into the store's ``rating_log``.
        Invalidation is **fine-grained**: only cache entries and warm
        embedding rows whose assembly read a changed user/item are dropped;
        the rest survive (pool growth forces a full drop — see
        ``docs/scaling.md``).  Returns the number of deltas applied — zero
        means nothing changed (and nothing was invalidated).

        In-flight requests are unaffected: each request pins the graph
        snapshot it was admitted under and executes against it, so a
        delta that rates a queried pair can never fail (or leak into) a
        request that was already accepted.  Only submissions after the
        update see the new graph.
        """
        return self._store.apply(ratings).applied

    def _on_graph_update(self, result: UpdateResult) -> None:
        """GraphStore subscriber: translate an update into invalidation."""
        self._counter("updates_applied_total").inc(result.applied)
        self._counter("updates_skipped_total").inc(result.skipped)
        if not result.applied:
            return
        if self.cache is not None:
            if result.full_invalidation:
                self.cache.invalidate()
            else:
                evicted, spared = self.cache.invalidate_entities(
                    result.changed_users, result.changed_items)
                self._counter("invalidation_evicted_total").inc(evicted)
                self._counter("invalidation_spared_total").inc(spared)
        if self.frontier_cache is not None:
            if result.full_invalidation:
                self.frontier_cache.invalidate()
            else:
                evicted, _ = self.frontier_cache.invalidate_entities(
                    result.changed_users, result.changed_items)
                self._counter("frontier.invalidation_evicted_total").inc(
                    evicted)
        if result.full_invalidation:
            # Pool growth may have introduced entities the store has never
            # sized rows for; retire it wholesale.
            self._embed_store = None
        else:
            store = self._embed_store
            if store is not None:
                store.invalidate_entities(result.changed_users,
                                          result.changed_items)

    @property
    def graph_store(self) -> GraphStore:
        """The (possibly shared) data plane this service serves from."""
        return self._store

    @property
    def rating_log(self):
        return self._store.rating_log

    @property
    def graph_generation(self) -> int:
        return self._store.state.generation

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop intake and shut the workers down.

        ``drain=True`` processes every queued request before returning;
        ``drain=False`` fails the still-queued requests' futures with
        :class:`ServiceClosedError`.  Either way every submitted request's
        future resolves exactly once — none are lost.
        """
        if self._closed:
            return
        self._closed = True
        self._batcher.close()
        if not drain:
            leftovers = self._batcher.drain()
            error = ServiceClosedError("service closed before execution")
            for request in leftovers:
                if not request.future.done():
                    request.future.set_exception(error)
        self._pool.join(timeout)
        self._pool.close(1.0)
        # Telemetry last, after the workers stop producing it: the
        # exporter's close writes one final drain snapshot (which calls
        # health()), then the tracer finalizes its sink.
        if self.exporter is not None:
            self.exporter.close()
        if self.tracer is not None:
            self.tracer.close()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def _windowed_rate(self, numerator, denominators, window: float | None
                       ) -> float | None:
        """``num / sum(denoms)`` over one window; ``None`` when idle."""
        total = sum(d.total(window) for d in denominators)
        if total <= 0:
            return None
        return numerator.total(window) / total

    def _probes(self) -> dict:
        """The SLO probe values as ``{probe: (short, long)}`` pairs."""
        short = self.config.short_window_seconds

        def p99(window):
            if self._window_latency.count(window) == 0:
                return None
            return self._window_latency.quantile(0.99, window_seconds=window)

        submitted = (self._window_requests, self._window_rejected)
        lookups = (self._window_cache_hits, self._window_cache_misses)
        return {
            "latency_p99_seconds": (p99(short), p99(None)),
            "shed_rate": (
                self._windowed_rate(self._window_rejected, submitted, short),
                self._windowed_rate(self._window_rejected, submitted, None)),
            "cache_hit_rate": (
                self._windowed_rate(self._window_cache_hits, lookups, short),
                self._windowed_rate(self._window_cache_hits, lookups, None)),
            # Fraction of admitted requests the budget ladder degraded —
            # the graceful-degradation twin of shed_rate (not covered by
            # the default rules; attach one via slo_rules to alert on it).
            "degraded_rate": (
                self._windowed_rate(self._window_degraded,
                                    (self._window_requests,), short),
                self._windowed_rate(self._window_degraded,
                                    (self._window_requests,), None)),
        }

    def health(self) -> dict:
        """SLO states over the rolling windows, plus liveness basics.

        ``state`` aggregates every rule (``breach`` > ``warn`` > ``ok``;
        idle probes are ``no_data`` and never escalate).  JSON-able — this
        is also what the telemetry exporter snapshots each tick.
        """
        probes = self._probes()
        statuses = obs.evaluate_slos(self._slo_rules, probes)
        return {
            "state": obs.worst_state(statuses),
            "slos": [status.snapshot() for status in statuses],
            "probes": {name: {"short": short, "long": long}
                       for name, (short, long) in probes.items()},
            "windows": {
                "window_seconds": self.config.window_seconds,
                "short_window_seconds": self.config.short_window_seconds,
            },
            "queue_depth": self._batcher.depth,
            "workers_alive": self._pool.alive_count(),
            "closed": self._closed,
            "graph_generation": self.graph_generation,
        }

    def stats(self) -> dict:
        """Queue, cache, metric, trace, and SLO state as one snapshot."""
        out = {
            "queue_depth": self._batcher.depth,
            "graph_generation": self.graph_generation,
            "updates": self._store.stats(),
            "metrics": self.metrics.snapshot(),
            "health": self.health(),
        }
        if self.tracer is not None:
            out["trace"] = {
                "completed": self.tracer.completed,
                "buffered": len(self.tracer),
                "stage_totals": self.tracer.stage_totals(),
            }
        if self.cache is not None:
            out["cache"] = {**self.cache.stats.snapshot(), "entries": len(self.cache)}
        if self.frontier_cache is not None:
            out["frontier_cache"] = {**self.frontier_cache.stats.snapshot(),
                                     "entries": len(self.frontier_cache)}
        store = self._embed_store
        if store is not None:
            out["embed_store"] = store.stats()
        return out

    def report(self) -> str:
        """The service's telemetry as ``obs.report`` text tables."""
        lines = [obs.render_metrics_table(self.metrics)]
        if self.tracer is not None:
            lines.append("")
            lines.append(obs.render_trace_table(self.tracer.stage_totals()))
        health = self.health()
        lines.append("")
        lines.append(obs.render_slo_table(health["slos"]))
        lines.append(f"health: {health['state']}")
        if self.cache is not None:
            snap = self.cache.stats.snapshot()
            lines.append("")
            lines.append(
                f"context cache: {len(self.cache)} entries"
                f"   hit rate {snap['hit_rate'] * 100:.1f}%"
                f"   ({snap['hits']} hits / {snap['misses']} misses,"
                f" {snap['evictions']} evicted)")
            precision = snap["invalidation_precision"]
            if precision is not None:
                lines.append(
                    f"invalidation: {snap['entries_spared']} spared /"
                    f" {snap['entries_evicted']} evicted across"
                    f" {snap['partial_invalidations']} sweeps"
                    f"   precision {precision * 100:.1f}%")
        if self.frontier_cache is not None:
            snap = self.frontier_cache.stats.snapshot()
            lines.append(
                f"frontier cache: {len(self.frontier_cache)} entries"
                f"   hit rate {snap['hit_rate'] * 100:.1f}%"
                f"   ({snap['hits']} hits / {snap['misses']} misses,"
                f" {snap['evictions']} evicted)")
        updates = self._store.stats()
        lines.append(
            f"graph updates: {updates['applied_total']} applied /"
            f" {updates['skipped_total']} skipped"
            f" (generation {updates['generation']}, epoch {updates['epoch']},"
            f" {updates['partial_invalidations']} partial /"
            f" {updates['full_invalidations']} full invalidations)")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Worker internals
    # ------------------------------------------------------------------ #
    def _metric_name(self, name: str) -> str:
        return f"{self.config.metrics_prefix}.{name}"

    def _counter(self, name: str):
        return self.metrics.counter(self._metric_name(name))

    def _gauge(self, name: str):
        return self.metrics.gauge(self._metric_name(name))

    def _histogram(self, name: str):
        return self.metrics.histogram(self._metric_name(name))

    def _windowed_histogram(self, name: str):
        cfg = self.config
        return self.metrics.instrument(
            self._metric_name(name),
            lambda full_name: obs.WindowedHistogram(
                full_name, window_seconds=cfg.window_seconds,
                num_slices=self._num_slices, clock=self._clock))

    def _windowed_counter(self, name: str):
        cfg = self.config
        return self.metrics.instrument(
            self._metric_name(name),
            lambda full_name: obs.WindowedCounter(
                full_name, window_seconds=cfg.window_seconds,
                num_slices=self._num_slices, clock=self._clock))

    def _resolve_model(self) -> HIRE:
        if self._registry is not None:
            return self._registry.active()[1]
        return self._model

    def _worker_loop(self, stop_event) -> bool | None:
        try:
            batch = self._batcher.next_batch(timeout=0.05)
        except ServiceClosedError:
            return False  # closed and drained: exit
        if not batch:
            return None  # idle tick; keep polling (or notice stop_event)
        self._process_batch(batch)
        return None

    def _process_batch(self, batch: list[PredictRequest]) -> None:
        self._gauge("queue_depth").set(self._batcher.depth)
        self._histogram("batch_size").observe(len(batch))
        self._counter("batches_total").inc()
        try:
            model = self._resolve_model()
            fallback_state = self._store.state
            groups = group_requests(batch)

            assemble_start = self._clock()
            plans = []
            with obs.span("serve/assemble"):
                for key, requests in groups:
                    # Snapshot isolation: assemble against the graph the
                    # request was admitted under (requests from different
                    # generations never coalesce — generation is in the
                    # coalescing key).
                    state = requests[0].graph_state or fallback_state
                    plans.append((requests, self._chunks_for(requests[0],
                                                             state)))
            assembled_at = self._clock()
            # Pack time accumulates here so the forward stage can report
            # model execution exclusive of padded stacking.
            stage_seconds = {"pack": 0.0}
            with obs.span("serve/forward"):
                scores_by_plan = self._score_plans(model, plans, stage_seconds)
            forwarded_at = self._clock()

            # Batch-level stages are shared by every request in the batch.
            stage_seconds["assemble"] = assembled_at - assemble_start
            self._window_assemble_seconds.observe(stage_seconds["assemble"])
            stage_seconds["forward"] = max(
                forwarded_at - assembled_at - stage_seconds["pack"], 0.0)
            for (requests, _), scores in zip(plans, scores_by_plan):
                self._resolve(requests, scores, forwarded_at, stage_seconds)
        except Exception as error:  # fail the whole batch, never hang callers
            self._counter("failed_total").inc(len(batch))
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(error)

    def _resolve(self, requests: list[PredictRequest], scores: np.ndarray,
                 forwarded_at: float, stage_seconds: dict) -> None:
        latency = self._histogram("latency_seconds")
        for index, request in enumerate(requests):
            # Coalesced requests each get their own array (no sharing).
            request.future.set_result(scores if index == 0 else scores.copy())
            now = self._clock()
            total = now - request.enqueued_at
            latency.observe(total)
            self._window_latency.observe(total)
            self._counter("completed_total").inc()
            self._window_completed.inc()
            trace = request.trace
            if trace is not None and self.tracer is not None:
                trace.mark("enqueue",
                           request.dequeued_at - request.enqueued_at)
                trace.mark("batch_form",
                           request.batch_formed_at - request.dequeued_at)
                trace.mark("assemble", stage_seconds["assemble"])
                trace.mark("pack", stage_seconds["pack"])
                trace.mark("forward", stage_seconds["forward"])
                trace.mark("respond", now - forwarded_at)
                self.tracer.finish(trace, total)
                for stage, seconds in trace.stages.items():
                    self._stage_windows[stage].observe(seconds)

    # -- shape buckets ------------------------------------------------- #
    def _effective_budgets(self, request: PredictRequest) -> tuple[int, int]:
        """Context budgets for one request (per-request overrides applied)."""
        cfg = self.config
        n = cfg.context_users if request.context_users is None else request.context_users
        m = cfg.context_items if request.context_items is None else request.context_items
        return n, m

    def _bucket_dims(self, n: int, m: int) -> tuple[int, int]:
        """Round ``(n, m)`` up to the padded bucket shape, or return them
        unchanged when padding is disabled for this shape.

        Shapes with ``n < 2`` or ``m < 2`` never pad: a single-token axis
        turns padded linears into the one GEMM shape whose padded result is
        not bitwise stable (see ``docs/nn_substrate.md``).  Shapes whose
        bucket would inflate the cell count past ``pack_max_waste`` stay
        exact as well — padding them would burn more FLOPs than stacking
        saves.
        """
        b = self.config.pack_bucket
        if b <= 1 or n < 2 or m < 2:
            return n, m
        nb = -(-n // b) * b
        mb = -(-m // b) * b
        if (nb * mb) / (n * m) - 1.0 > self.config.pack_max_waste:
            return n, m
        return nb, mb

    def _request_bucket(self, request: PredictRequest) -> tuple[int, int]:
        """The micro-batcher's bucket key: padded shape of this request."""
        return self._bucket_dims(*self._effective_budgets(request))

    def _embed_store_for(self, model: HIRE):
        """The warm-entity row store for ``model``, rebuilt when the model
        or its parameter generation changed (registry hot swap)."""
        if not self.config.embed_store_enabled:
            return None
        store = self._embed_store
        if store is None or not store.valid_for(model):
            store = nn.inference.EmbeddingStore(model)
            self._embed_store = store
        return store

    # -- exact path ---------------------------------------------------- #
    def _chunks_for(self, request: PredictRequest, graph_state) -> list:
        """Per-sample assembled chunks for one request (cache-aware).

        Keys carry the store *epoch* (full-invalidation counter), not the
        per-update generation, so cached assemblies survive updates that
        never touched their entities.  On a miss the finished assembly is
        put back tagged with the exact users/items its contexts read,
        guarded by the store's per-entity staleness predicate — a worker
        pinned to a pre-update snapshot drops its entry instead of caching
        stale contexts.
        """
        graph = graph_state.graph
        cfg = self.config
        context_users, context_items = self._effective_budgets(request)
        key = context_cache_key(graph_state.epoch, self.sampler.name,
                                request.user,
                                request.item_ids, request.support_items,
                                context_users, context_items,
                                cfg.reveal_fraction, cfg.seed)
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                self._counter("cache_hits_total").inc()
                self._window_cache_hits.inc()
                return cached
            self._counter("cache_misses_total").inc()
            self._window_cache_misses.inc()

        samples = []
        for sample_index in range(cfg.num_context_samples):
            def rng_factory(start, _sample=sample_index):
                return task_chunk_rng(cfg.seed, request.user, _sample, start)
            frontier = None
            if self.frontier_cache is not None:
                def key_factory(start, _sample=sample_index):
                    return frontier_cache_key(
                        graph_state.epoch, self.sampler.name, request.user,
                        request.item_ids, request.support_items,
                        context_users, context_items, cfg.seed, _sample,
                        start)
                frontier = FrontierBinding(
                    self.frontier_cache, key_factory,
                    generation=graph_state.generation,
                    guard=self._store.changed_since,
                    on_hit=self._counter("frontier.hits_total").inc,
                    on_miss=self._counter("frontier.misses_total").inc)
            samples.append(assemble_user_chunks(
                graph, self.sampler, request.user,
                request.item_ids, request.support_items,
                context_users=context_users,
                context_items=context_items,
                reveal_fraction=cfg.reveal_fraction,
                candidate_users=graph_state.candidate_users,
                candidate_items=graph_state.candidate_items,
                rng_factory=rng_factory,
                frontier=frontier,
            ))
        if self.cache is not None:
            touched_users = np.unique(np.concatenate(
                [chunk.context.users for chunks in samples for chunk in chunks]))
            touched_items = np.unique(np.concatenate(
                [chunk.context.items for chunks in samples for chunk in chunks]))
            self.cache.put(key, samples,
                           users=touched_users, items=touched_items,
                           generation=graph_state.generation,
                           guard=self._store.changed_since)
        return samples

    def _score_plans(self, model: HIRE, plans,
                     stage_seconds: dict | None = None) -> list[np.ndarray]:
        """Score every plan's chunks, stacking same-*bucket* contexts into
        one padded :func:`~repro.nn.inference.forward_inference_packed`
        execution (bit-identical per real row to solo forwards).

        Contexts whose exact shape already fills its bucket (the common
        case under uniform budgets) take the unpadded ``forward_many``
        path; mixed-shape buckets pad each context up to the bucket shape
        and run once.  Without the engine (or with ``pack_contexts``
        off) grouping falls back to exact shapes.
        """
        entries = []  # (plan_index, sample_index, chunk)
        for plan_index, (_requests, samples) in enumerate(plans):
            for sample_index, chunks in enumerate(samples):
                for chunk in chunks:
                    entries.append((plan_index, sample_index, chunk))
        if not entries:
            return []

        use_engine = (self.config.use_inference_engine
                      and nn.inference.engine_supported(model))
        pack = use_engine and self.config.pack_contexts
        store = self._embed_store_for(model) if use_engine else None

        by_bucket: dict[tuple[int, int], list] = {}
        for entry in entries:
            context = entry[2].context
            bucket = (self._bucket_dims(context.n, context.m)
                      if pack else (context.n, context.m))
            by_bucket.setdefault(bucket, []).append(entry)

        predicted: dict[int, np.ndarray] = {}
        with nn.no_grad():
            for (nb, mb), bucket_entries in by_bucket.items():
                contexts = [chunk.context for _, _, chunk in bucket_entries]
                exact = all(c.n == nb and c.m == mb for c in contexts)
                if use_engine and not exact:
                    self._score_packed(model, nb, mb, bucket_entries,
                                       contexts, store, predicted,
                                       stage_seconds)
                    continue
                if use_engine:
                    if len(contexts) == 1:
                        outputs = nn.inference.forward_inference(
                            model, contexts[0], embed_store=store)[None]
                    else:
                        outputs = nn.inference.forward_inference_many(
                            model, contexts, embed_store=store)
                elif len(contexts) == 1:
                    outputs = model.forward(contexts[0]).data[None]
                else:
                    outputs = model.forward_many(contexts).data
                # Extract each chunk's scores immediately: engine outputs
                # are views into a reused workspace, overwritten by the
                # next bucket's forward.
                for (_, _, chunk), output in zip(bucket_entries, outputs):
                    predicted[id(chunk)] = output[chunk.user_row, chunk.cols]

        scores_by_plan: list[np.ndarray] = []
        for plan_index, (requests, samples) in enumerate(plans):
            num_items = len(requests[0].item_ids)
            total: np.ndarray | None = None
            for chunks in samples:
                part = np.empty(num_items, dtype=np.float64)
                for chunk in chunks:
                    part[chunk.start:chunk.start + len(chunk)] = (
                        predicted[id(chunk)])
                # Same accumulation order as HIREPredictor.predict_task, so
                # multi-sample averages stay bit-identical too.
                total = part if total is None else total + part
            scores_by_plan.append(total / len(samples))
        return scores_by_plan

    def _score_packed(self, model: HIRE, nb: int, mb: int, bucket_entries,
                      contexts, store, predicted,
                      stage_seconds: dict | None = None) -> None:
        """One padded stacked execution for a mixed-shape bucket."""
        real = sum(c.n * c.m for c in contexts)
        padded = nb * mb * len(contexts)
        pack_start = self._clock()
        with obs.span("serve/pack"):
            outputs, slots = nn.inference.forward_inference_packed(
                model, contexts, nb, mb, embed_store=store)
            for index, (_, _, chunk) in enumerate(bucket_entries):
                predicted[id(chunk)] = (
                    outputs[slots[index]][chunk.user_row, chunk.cols])
        if stage_seconds is not None:
            stage_seconds["pack"] += self._clock() - pack_start
        self._counter("packed_contexts_total").inc(len(contexts))
        self._gauge("pack_pad_waste").set(padded / real - 1.0)
        self._histogram("pack_bucket_occupancy").observe(len(contexts))
