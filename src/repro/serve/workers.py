"""Bounded work queue and thread worker pool for the serving layer.

Two policies are deliberate and explicit:

* **Backpressure by load shedding** — :meth:`BoundedQueue.put` never
  blocks.  A full queue raises :class:`~repro.serve.errors.QueueFullError`
  immediately, pushing the wait out to the client (which can retry) instead
  of letting unbounded work pile up inside the process.
* **Graceful shutdown** — :meth:`BoundedQueue.close` stops intake; workers
  keep draining until the queue is empty (``drain=True``) or the remaining
  items are handed back to the caller (``drain=False``) so their futures
  can be failed explicitly.  Nothing is ever silently dropped.
"""

from __future__ import annotations

import threading
from collections import deque

from .errors import QueueFullError, ServiceClosedError

__all__ = ["BoundedQueue", "WorkerPool"]


class BoundedQueue:
    """A bounded MPMC queue with non-blocking put and timed get."""

    def __init__(self, maxsize: int):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def put(self, item) -> None:
        """Enqueue without blocking; shed load when full.

        Raises :class:`QueueFullError` when the queue is at capacity and
        :class:`ServiceClosedError` after :meth:`close`.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError("queue is closed")
            if len(self._items) >= self.maxsize:
                raise QueueFullError(
                    f"queue full ({self.maxsize} pending); retry later")
            self._items.append(item)
            self._not_empty.notify()

    def get(self, timeout: float):
        """Dequeue one item, waiting up to ``timeout`` seconds.

        Returns the item, or ``None`` on timeout.  Raises
        :class:`ServiceClosedError` once the queue is closed *and* empty —
        the signal for a draining worker to exit.
        """
        with self._not_empty:
            if not self._items:
                if self._closed:
                    raise ServiceClosedError("queue is closed and drained")
                self._not_empty.wait(timeout)
            if self._items:
                return self._items.popleft()
            if self._closed:
                raise ServiceClosedError("queue is closed and drained")
            return None

    def close(self) -> list:
        """Stop intake and wake all waiters; returns the items still queued.

        The pending items stay in the queue for draining workers; the
        returned list is a snapshot the caller may use to fail fast instead
        (after :meth:`drain`).
        """
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            return list(self._items)

    def drain(self) -> list:
        """Atomically remove and return every queued item."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            self._not_empty.notify_all()
            return items

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class WorkerPool:
    """Named daemon threads running one loop function until told to stop.

    ``loop`` is called repeatedly as ``loop(stop_event)``; it returns
    ``False`` (or the stop event is set and the loop observes it) to exit.
    :meth:`close` sets the event and joins every thread — with a timeout,
    so shutdown can never hang forever on a stuck worker.
    """

    def __init__(self, loop, num_workers: int = 1, name: str = "serve-worker"):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self._loop = loop
        self._stop = threading.Event()
        self._threads = [
            threading.Thread(target=self._run, name=f"{name}-{index}", daemon=True)
            for index in range(num_workers)
        ]
        self._started = False

    def _run(self) -> None:
        while not self._stop.is_set():
            if self._loop(self._stop) is False:
                break

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for thread in self._threads:
            thread.start()

    def join(self, timeout: float | None = None) -> None:
        """Wait for workers to exit on their own (e.g. a drained queue)
        WITHOUT signalling them to stop — the draining-shutdown path."""
        if not self._started:
            return
        for thread in self._threads:
            thread.join(timeout)

    def close(self, timeout: float | None = 10.0) -> None:
        """Signal every worker to stop and join them (bounded wait)."""
        self._stop.set()
        if not self._started:
            return
        for thread in self._threads:
            thread.join(timeout)

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def alive_count(self) -> int:
        return sum(thread.is_alive() for thread in self._threads)

    def __len__(self) -> int:
        return len(self._threads)
