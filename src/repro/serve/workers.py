"""Serving-layer façade over the shared concurrency primitives.

The queue/pool implementation lives in :mod:`repro.concurrency` (it is
shared with the training-context pipeline, :mod:`repro.pipeline`); this
module binds it to the serving layer's policies and typed errors:

* **Backpressure by load shedding** — :meth:`BoundedQueue.put` never
  blocks.  A full queue raises :class:`~repro.serve.errors.QueueFullError`
  immediately, pushing the wait out to the client (which can retry) instead
  of letting unbounded work pile up inside the process.
* **Graceful shutdown** — :meth:`BoundedQueue.close` stops intake; workers
  keep draining until the queue is empty (``drain=True``) or the remaining
  items are handed back to the caller (``drain=False``) so their futures
  can be failed explicitly.  Nothing is ever silently dropped.
"""

from __future__ import annotations

from ..concurrency import BoundedQueue as _BoundedQueue
from ..concurrency import WorkerPool
from .errors import QueueFullError, ServiceClosedError

__all__ = ["BoundedQueue", "WorkerPool"]


class BoundedQueue(_BoundedQueue):
    """The shared bounded MPMC queue, raising the serving layer's errors."""

    def __init__(self, maxsize: int):
        super().__init__(maxsize, full_error=QueueFullError,
                         closed_error=ServiceClosedError)
