"""Serving workloads: synthesis, JSONL persistence, and replay.

A workload is a list of :class:`WorkloadRequest` — the offline stand-in for
online traffic.  :func:`synthesize_workload` draws requests from evaluation
tasks with a skewed hot set (a small fraction of users receives most of the
traffic, as real request streams do), which is what makes the context cache
earn its keep in benchmarks.  :func:`replay_workload` pushes a workload
through a :class:`~repro.serve.service.PredictionService`, retrying briefly
when backpressure sheds a request.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..eval.tasks import EvalTask
from .errors import QueueFullError

__all__ = [
    "WorkloadRequest",
    "synthesize_workload",
    "save_workload",
    "load_workload",
    "replay_workload",
]


@dataclass(frozen=True)
class WorkloadRequest:
    """One replayable ``(user, items)`` request; supports may be explicit.

    ``context_users`` / ``context_items`` optionally carry per-request
    context-budget overrides (``None`` = service default) — the knob that
    makes a workload *mixed-shape* and exercises the padded packer.
    """

    user: int
    item_ids: tuple[int, ...]
    support_items: tuple[int, ...] | None = None
    context_users: int | None = None
    context_items: int | None = None

    @classmethod
    def from_task(cls, task: EvalTask,
                  context_users: int | None = None,
                  context_items: int | None = None) -> "WorkloadRequest":
        return cls(user=int(task.user),
                   item_ids=tuple(int(i) for i in task.query_items),
                   support_items=tuple(int(i) for i in task.support_items),
                   context_users=context_users, context_items=context_items)


def synthesize_workload(tasks: list[EvalTask], num_requests: int,
                        seed: int = 0, hot_fraction: float = 0.8,
                        hot_set_size: int | None = None,
                        context_budgets: list[tuple[int, int]] | None = None
                        ) -> list[WorkloadRequest]:
    """Draw a skewed request stream from evaluation tasks.

    ``hot_fraction`` of the requests target a random ``hot_set_size``-task
    hot set (default: a quarter of the tasks), the rest are uniform over all
    tasks.  Repeats are intentional — they exercise request coalescing and
    the context cache.

    ``context_budgets`` (a list of ``(context_users, context_items)``
    pairs) makes the stream mixed-shape: each request draws one pair
    uniformly as its budget override.  ``None`` keeps every request on the
    service's default budgets (single-shape traffic).
    """
    if not tasks:
        raise ValueError("need at least one task to synthesize a workload")
    rng = np.random.default_rng(seed)
    if hot_set_size is None:
        hot_set_size = max(len(tasks) // 4, 1)
    hot_set_size = min(hot_set_size, len(tasks))
    hot = rng.choice(len(tasks), size=hot_set_size, replace=False)

    requests = []
    for _ in range(num_requests):
        if rng.random() < hot_fraction:
            index = int(rng.choice(hot))
        else:
            index = int(rng.integers(len(tasks)))
        budget = (None, None)
        if context_budgets:
            budget = context_budgets[int(rng.integers(len(context_budgets)))]
        requests.append(WorkloadRequest.from_task(
            tasks[index], context_users=budget[0], context_items=budget[1]))
    return requests


def save_workload(path: str | Path, requests: list[WorkloadRequest]) -> Path:
    """Write a workload as JSONL: one ``{"user", "items", "supports"}`` per line."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for request in requests:
            record = {"user": request.user, "items": list(request.item_ids)}
            if request.support_items is not None:
                record["supports"] = list(request.support_items)
            if request.context_users is not None:
                record["context_users"] = request.context_users
            if request.context_items is not None:
                record["context_items"] = request.context_items
            handle.write(json.dumps(record) + "\n")
    return path


def load_workload(path: str | Path) -> list[WorkloadRequest]:
    """Read a JSONL workload written by :func:`save_workload`."""
    requests = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            supports = record.get("supports")
            context_users = record.get("context_users")
            context_items = record.get("context_items")
            requests.append(WorkloadRequest(
                user=int(record["user"]),
                item_ids=tuple(int(i) for i in record["items"]),
                support_items=(tuple(int(i) for i in supports)
                               if supports is not None else None),
                context_users=(int(context_users)
                               if context_users is not None else None),
                context_items=(int(context_items)
                               if context_items is not None else None),
            ))
    return requests


def replay_workload(service, requests: list[WorkloadRequest],
                    timeout: float = 60.0,
                    retry_interval: float = 0.001) -> list[np.ndarray]:
    """Submit a workload and gather every score vector, in request order.

    Shed requests (:class:`QueueFullError`) are retried after a short sleep
    — the replay is a closed loop, so backpressure slows submission instead
    of losing work.
    """
    futures = []
    for request in requests:
        supports = (np.asarray(request.support_items, dtype=np.int64)
                    if request.support_items is not None else None)
        while True:
            try:
                futures.append(service.submit(
                    request.user, request.item_ids, supports,
                    context_users=request.context_users,
                    context_items=request.context_items))
                break
            except QueueFullError:
                time.sleep(retry_interval)
    return [future.result(timeout) for future in futures]
