"""Serving workloads: synthesis, JSONL persistence, and replay.

A workload is a list of :class:`WorkloadRequest` — the offline stand-in for
online traffic.  :func:`synthesize_workload` draws requests from evaluation
tasks with a skewed hot set (a small fraction of users receives most of the
traffic, as real request streams do), which is what makes the context cache
earn its keep in benchmarks.  :func:`replay_workload` pushes a workload
through a :class:`~repro.serve.service.PredictionService`, retrying briefly
when backpressure sheds a request.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..eval.tasks import EvalTask
from .errors import QueueFullError

__all__ = [
    "WorkloadRequest",
    "synthesize_workload",
    "synthesize_power_law_workload",
    "synthesize_update_bursts",
    "save_workload",
    "load_workload",
    "replay_workload",
]


@dataclass(frozen=True)
class WorkloadRequest:
    """One replayable ``(user, items)`` request; supports may be explicit.

    ``context_users`` / ``context_items`` optionally carry per-request
    context-budget overrides (``None`` = service default) — the knob that
    makes a workload *mixed-shape* and exercises the padded packer.
    """

    user: int
    item_ids: tuple[int, ...]
    support_items: tuple[int, ...] | None = None
    context_users: int | None = None
    context_items: int | None = None

    @classmethod
    def from_task(cls, task: EvalTask,
                  context_users: int | None = None,
                  context_items: int | None = None) -> "WorkloadRequest":
        return cls(user=int(task.user),
                   item_ids=tuple(int(i) for i in task.query_items),
                   support_items=tuple(int(i) for i in task.support_items),
                   context_users=context_users, context_items=context_items)


def synthesize_workload(tasks: list[EvalTask], num_requests: int,
                        seed: int = 0, hot_fraction: float = 0.8,
                        hot_set_size: int | None = None,
                        context_budgets: list[tuple[int, int]] | None = None
                        ) -> list[WorkloadRequest]:
    """Draw a skewed request stream from evaluation tasks.

    ``hot_fraction`` of the requests target a random ``hot_set_size``-task
    hot set (default: a quarter of the tasks), the rest are uniform over all
    tasks.  Repeats are intentional — they exercise request coalescing and
    the context cache.

    ``context_budgets`` (a list of ``(context_users, context_items)``
    pairs) makes the stream mixed-shape: each request draws one pair
    uniformly as its budget override.  ``None`` keeps every request on the
    service's default budgets (single-shape traffic).
    """
    if not tasks:
        raise ValueError("need at least one task to synthesize a workload")
    rng = np.random.default_rng(seed)
    if hot_set_size is None:
        hot_set_size = max(len(tasks) // 4, 1)
    hot_set_size = min(hot_set_size, len(tasks))
    hot = rng.choice(len(tasks), size=hot_set_size, replace=False)

    requests = []
    for _ in range(num_requests):
        if rng.random() < hot_fraction:
            index = int(rng.choice(hot))
        else:
            index = int(rng.integers(len(tasks)))
        budget = (None, None)
        if context_budgets:
            budget = context_budgets[int(rng.integers(len(context_budgets)))]
        requests.append(WorkloadRequest.from_task(
            tasks[index], context_users=budget[0], context_items=budget[1]))
    return requests


def synthesize_power_law_workload(tasks: list[EvalTask], num_requests: int,
                                  seed: int = 0, exponent: float = 1.1,
                                  context_budgets: list[tuple[int, int]] | None = None
                                  ) -> list[WorkloadRequest]:
    """Draw a rank-weighted power-law request stream (Zipf-like traffic).

    Tasks are ranked by a seeded shuffle and task at rank ``r`` receives
    traffic proportional to ``1 / r**exponent`` — the heavy-tailed shape of
    real request streams, and deliberately harsher than
    :func:`synthesize_workload`'s two-tier hot set: the head users hammer
    one shard's cache while the long tail keeps every shard busy, which is
    what the sharding benchmark uses to measure load imbalance under
    realistic skew.
    """
    if not tasks:
        raise ValueError("need at least one task to synthesize a workload")
    if exponent < 0:
        raise ValueError("exponent must be >= 0")
    rng = np.random.default_rng(seed)
    ranked = rng.permutation(len(tasks))
    weights = 1.0 / np.arange(1, len(tasks) + 1) ** exponent
    weights /= weights.sum()

    requests = []
    for _ in range(num_requests):
        index = int(ranked[rng.choice(len(tasks), p=weights)])
        budget = (None, None)
        if context_budgets:
            budget = context_budgets[int(rng.integers(len(context_budgets)))]
        requests.append(WorkloadRequest.from_task(
            tasks[index], context_users=budget[0], context_items=budget[1]))
    return requests


def synthesize_update_bursts(split, tasks: list[EvalTask], num_bursts: int,
                             burst_size: int, seed: int = 0
                             ) -> list[np.ndarray]:
    """Flash rating-update bursts to interleave with a replayed workload.

    Each burst is a ``(burst_size, 3)`` delta batch, half re-rates of warm
    training triples (value reflected within the dataset's rating range, so
    every re-rate is a genuine change) and half brand-new ratings on
    previously unrated warm-user × warm-item pairs.  Entities are drawn
    with inverse-degree weights — flash updates come disproportionately
    from *tail* users and items (new activity), and tail entities are
    exactly the ones hot contexts never sampled, so the bursts exercise the
    fine-grained invalidation's ability to spare unrelated cache entries.
    Two more properties matter for replayability:

    * bursts never touch a task user, so no delta can rate a pair the
      workload queries (``submit`` rejects already-rated query pairs);
    * every entity stays inside the serving candidate pools, so bursts
      exercise the *fine-grained* invalidation path, never the pool-growth
      full invalidation.
    """
    if num_bursts < 0 or burst_size < 1:
        raise ValueError("need num_bursts >= 0 and burst_size >= 1")
    rng = np.random.default_rng(seed)
    low, high = split.dataset.rating_range
    task_users = {int(task.user) for task in tasks}
    train = np.asarray(split.train_ratings(), dtype=np.float64)
    train_u = train[:, 0].astype(np.int64)
    train_i = train[:, 1].astype(np.int64)
    eligible = np.flatnonzero(~np.isin(train_u, sorted(task_users)))
    users_pool = split.train_users[
        ~np.isin(split.train_users, sorted(task_users))]
    if not eligible.size or not users_pool.size:
        raise ValueError("no warm non-task users to build bursts from")
    rated = {(int(u), int(i)) for u, i, _ in train}

    user_degree = np.bincount(train_u, minlength=split.dataset.num_users)
    item_degree = np.bincount(train_i, minlength=split.dataset.num_items)

    def normalized(weights):
        return weights / weights.sum()

    triple_w = normalized(1.0 / (user_degree[train_u[eligible]]
                                 * item_degree[train_i[eligible]]))
    user_w = normalized(1.0 / np.maximum(user_degree[users_pool], 1))
    item_w = normalized(1.0 / np.maximum(item_degree[split.train_items], 1))

    bursts = []
    for _ in range(num_bursts):
        num_rerates = burst_size // 2
        rows = []
        picks = rng.choice(eligible, size=min(num_rerates, eligible.size),
                           replace=False, p=triple_w)
        for index in picks:
            user, item, value = train[index]
            reflected = low + high - value
            if reflected == value:  # midpoint: reflection is a no-op
                reflected = high if value < (low + high) / 2 + 0.5 else low
            rows.append((user, item, reflected))
        attempts = 0
        while len(rows) < burst_size and attempts < burst_size * 100:
            attempts += 1
            user = int(rng.choice(users_pool, p=user_w))
            item = int(rng.choice(split.train_items, p=item_w))
            if (user, item) in rated:
                continue
            rated.add((user, item))
            rows.append((user, item, float(rng.integers(int(low), int(high) + 1))))
        bursts.append(np.array(rows, dtype=np.float64))
    return bursts


def save_workload(path: str | Path, requests: list[WorkloadRequest]) -> Path:
    """Write a workload as JSONL: one ``{"user", "items", "supports"}`` per line."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for request in requests:
            record = {"user": request.user, "items": list(request.item_ids)}
            if request.support_items is not None:
                record["supports"] = list(request.support_items)
            if request.context_users is not None:
                record["context_users"] = request.context_users
            if request.context_items is not None:
                record["context_items"] = request.context_items
            handle.write(json.dumps(record) + "\n")
    return path


def load_workload(path: str | Path) -> list[WorkloadRequest]:
    """Read a JSONL workload written by :func:`save_workload`."""
    requests = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            supports = record.get("supports")
            context_users = record.get("context_users")
            context_items = record.get("context_items")
            requests.append(WorkloadRequest(
                user=int(record["user"]),
                item_ids=tuple(int(i) for i in record["items"]),
                support_items=(tuple(int(i) for i in supports)
                               if supports is not None else None),
                context_users=(int(context_users)
                               if context_users is not None else None),
                context_items=(int(context_items)
                               if context_items is not None else None),
            ))
    return requests


def replay_workload(service, requests: list[WorkloadRequest],
                    timeout: float = 60.0,
                    retry_interval: float = 0.001,
                    rate: float | None = None) -> list[np.ndarray]:
    """Submit a workload and gather every score vector, in request order.

    Shed requests (:class:`QueueFullError`) are retried after a short sleep
    — the replay is a closed loop, so backpressure slows submission instead
    of losing work.

    ``rate`` optionally paces submission at that many requests per second
    (open-loop arrival schedule: each request has a fixed target instant,
    so a slow service sees the queue build up instead of slowing the
    submitter down).  ``None`` submits as fast as the queue accepts — the
    overload regime the adaptive budget ladder is benchmarked under.
    """
    futures = []
    started = time.perf_counter()
    for index, request in enumerate(requests):
        if rate is not None:
            due = started + index / rate
            delay = due - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
        supports = (np.asarray(request.support_items, dtype=np.int64)
                    if request.support_items is not None else None)
        while True:
            try:
                futures.append(service.submit(
                    request.user, request.item_ids, supports,
                    context_users=request.context_users,
                    context_items=request.context_items))
                break
            except QueueFullError:
                time.sleep(retry_interval)
    return [future.result(timeout) for future in futures]
