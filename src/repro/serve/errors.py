"""Typed errors of the serving subsystem.

Every rejection the service can hand back is a distinct exception type, so
clients can tell load shedding (retry later, :class:`QueueFullError`) from
shutdown (:class:`ServiceClosedError`) from a request that can never
succeed (:class:`RequestError`).
"""

from __future__ import annotations

__all__ = [
    "ServeError",
    "QueueFullError",
    "ServiceClosedError",
    "UnknownModelError",
    "RequestError",
]


class ServeError(Exception):
    """Base class of all serving-layer errors."""


class QueueFullError(ServeError):
    """Load shed: the bounded request queue is full.

    Raised *immediately* at submission time — the service never blocks a
    caller waiting for queue space.  Clients should back off and retry.
    """


class ServiceClosedError(ServeError):
    """The service (or queue) no longer accepts work.

    Also set on the futures of requests discarded by a non-draining
    shutdown, so no submission ever goes silently unanswered.
    """


class UnknownModelError(ServeError, KeyError):
    """A model name not present in the registry."""


class RequestError(ServeError, ValueError):
    """A malformed request (empty item list, already-rated target, ...)."""
