"""LRU + TTL cache for assembled prediction contexts.

Neighbourhood sampling is the dominant online cost of a request (BFS over
the rating graph, Python-heavy — the same observation GraphHINGE makes for
metapath neighbourhoods), and under the serving layer's per-request RNG
derivation (:func:`repro.core.task_chunk_rng`) context assembly is a *pure
function* of its key.  That makes assembled contexts safely memoisable:
a cache hit returns bit-identical contexts to a fresh assembly.

Keys are built by :func:`context_cache_key` from the entity frontier
(user, query items, support items), the sampler, the context budgets, and
the graph store's *epoch* — the counter that bumps only on full
invalidations (candidate-pool growth), not on every update.  Ordinary
rating deltas instead evict **fine-grained**: each entry is tagged with
the users/items its assembly actually read, and
:meth:`ContextCache.invalidate_entities` drops exactly the entries whose
tag intersects the changed entities, sparing the rest
(:class:`repro.serve.dataplane.GraphStore` drives this).  A put-time
``guard`` closes the in-flight race: a worker pinned to a pre-update
snapshot re-checks the per-entity version map under the cache lock before
its entry lands, so a stale assembly is dropped instead of cached.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

__all__ = ["ContextCache", "CacheStats", "context_cache_key"]

_MISSING = object()


def context_cache_key(graph_epoch: int, sampler_name: str, user: int,
                      query_items, support_items, context_users: int,
                      context_items: int, reveal_fraction: float,
                      seed: int) -> tuple:
    """Hashable key identifying one request's assembled contexts.

    Everything that influences assembly appears in the key; two requests
    with equal keys are guaranteed (by the pure per-request RNG derivation)
    to assemble identical contexts.  ``graph_epoch`` is the full-
    invalidation counter, **not** the per-update generation — keeping the
    generation out of the key is what lets entries survive updates that
    never touched their entities (staleness against those updates is
    handled by entity tags + the put guard instead).
    """
    return (
        int(graph_epoch),
        str(sampler_name),
        int(user),
        tuple(int(i) for i in query_items),
        tuple(int(i) for i in support_items),
        int(context_users),
        int(context_items),
        float(reveal_fraction),
        int(seed),
    )


class CacheStats:
    """Hit/miss/eviction/invalidation counts of one cache (snapshot-friendly).

    ``invalidations`` counts full clears; ``partial_invalidations``,
    ``entries_evicted``, and ``entries_spared`` describe the fine-grained
    path (per sweep: how many tagged entries intersected the changed
    entities vs. survived), and ``stale_puts`` counts in-flight assemblies
    dropped by the put-time guard.
    """

    __slots__ = ("hits", "misses", "evictions", "expirations", "invalidations",
                 "partial_invalidations", "entries_evicted", "entries_spared",
                 "stale_puts")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0
        self.partial_invalidations = 0
        self.entries_evicted = 0
        self.entries_spared = 0
        self.stale_puts = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def invalidation_precision(self) -> float | None:
        """Fraction of entries spared across fine-grained sweeps.

        Under the old global-bump scheme this is identically 0 (every
        sweep dropped everything); ``None`` until a sweep has seen a
        non-empty cache.
        """
        scanned = self.entries_evicted + self.entries_spared
        if scanned == 0:
            return None
        return self.entries_spared / scanned

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "partial_invalidations": self.partial_invalidations,
            "entries_evicted": self.entries_evicted,
            "entries_spared": self.entries_spared,
            "stale_puts": self.stale_puts,
            "hit_rate": self.hit_rate,
            "invalidation_precision": self.invalidation_precision,
        }


class ContextCache:
    """Thread-safe LRU cache with optional TTL expiry and entity tags.

    ``max_entries`` bounds memory (least-recently-used eviction);
    ``ttl_seconds`` bounds staleness (entries older than the TTL are
    treated as misses and dropped).  ``clock`` is injectable for tests.

    Entries put with ``users``/``items`` tags participate in fine-grained
    invalidation (:meth:`invalidate_entities`); untagged entries are
    conservatively treated as depending on everything and fall in every
    sweep.
    """

    def __init__(self, max_entries: int = 1024, ttl_seconds: float | None = None,
                 clock=time.monotonic):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None)")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: OrderedDict[tuple, tuple[float, object]] = OrderedDict()
        self._tags: dict[tuple, tuple[frozenset, frozenset]] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, key: tuple, default=None):
        """The cached value, refreshing recency; ``default`` on miss."""
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                self.stats.misses += 1
                return default
            stored_at, value = entry
            if (self.ttl_seconds is not None
                    and self._clock() - stored_at > self.ttl_seconds):
                del self._entries[key]
                self._tags.pop(key, None)
                self.stats.expirations += 1
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: tuple, value, *, users=None, items=None,
            generation: int | None = None, guard=None) -> bool:
        """Insert an entry, optionally tagged with the entities it read.

        ``guard`` is a staleness predicate ``(users, items, generation) ->
        bool`` (the graph store's ``changed_since``), evaluated **under the
        cache lock**: if any tagged entity changed after the assembly's
        pinned ``generation``, the entry is dropped instead of inserted
        (``stats.stale_puts``) and ``False`` is returned.  This closes the
        window where a worker pinned to a pre-update snapshot finishes
        after the update's eviction sweep — the sweep runs strictly after
        the version bump, so whichever of sweep/put enters the lock last
        sees the other's effect.
        """
        with self._lock:
            if guard is not None and guard(users, items, generation or 0):
                self.stats.stale_puts += 1
                return False
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (self._clock(), value)
            if users is not None or items is not None:
                self._tags[key] = (
                    frozenset(int(u) for u in users) if users is not None
                    else frozenset(),
                    frozenset(int(i) for i in items) if items is not None
                    else frozenset(),
                )
            else:
                self._tags.pop(key, None)
            while len(self._entries) > self.max_entries:
                evicted, _ = self._entries.popitem(last=False)
                self._tags.pop(evicted, None)
                self.stats.evictions += 1
            return True

    def invalidate(self) -> None:
        """Drop every entry (full invalidation: pool growth, rebuild mode)."""
        with self._lock:
            self._entries.clear()
            self._tags.clear()
            self.stats.invalidations += 1

    def invalidate_entities(self, users, items) -> tuple[int, int]:
        """Drop exactly the entries whose tag intersects the changed
        entities; return ``(evicted, spared)``.

        Soundness rests on the tag being a superset of the assembly's
        graph read-set (see :mod:`repro.serve.dataplane`); untagged
        entries are evicted unconditionally.
        """
        changed_users = frozenset(int(u) for u in users)
        changed_items = frozenset(int(i) for i in items)
        with self._lock:
            doomed = []
            for key in self._entries:
                tag = self._tags.get(key)
                if (tag is None
                        or not changed_users.isdisjoint(tag[0])
                        or not changed_items.isdisjoint(tag[1])):
                    doomed.append(key)
            for key in doomed:
                del self._entries[key]
                self._tags.pop(key, None)
            spared = len(self._entries)
            self.stats.partial_invalidations += 1
            self.stats.entries_evicted += len(doomed)
            self.stats.entries_spared += spared
            return len(doomed), spared

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries
