"""LRU + TTL cache for assembled prediction contexts.

Neighbourhood sampling is the dominant online cost of a request (BFS over
the rating graph, Python-heavy — the same observation GraphHINGE makes for
metapath neighbourhoods), and under the serving layer's per-request RNG
derivation (:func:`repro.core.task_chunk_rng`) context assembly is a *pure
function* of its key.  That makes assembled contexts safely memoisable:
a cache hit returns bit-identical contexts to a fresh assembly.

Keys are built by :func:`context_cache_key` from the entity frontier
(user, query items, support items), the sampler, the context budgets, and
a graph generation counter — any update to the visible rating graph bumps
the generation, so stale neighbourhoods can never be served (the service
additionally calls :meth:`ContextCache.invalidate` to free the memory).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

__all__ = ["ContextCache", "CacheStats", "context_cache_key"]

_MISSING = object()


def context_cache_key(graph_generation: int, sampler_name: str, user: int,
                      query_items, support_items, context_users: int,
                      context_items: int, reveal_fraction: float,
                      seed: int) -> tuple:
    """Hashable key identifying one request's assembled contexts.

    Everything that influences assembly appears in the key; two requests
    with equal keys are guaranteed (by the pure per-request RNG derivation)
    to assemble identical contexts.
    """
    return (
        int(graph_generation),
        str(sampler_name),
        int(user),
        tuple(int(i) for i in query_items),
        tuple(int(i) for i in support_items),
        int(context_users),
        int(context_items),
        float(reveal_fraction),
        int(seed),
    )


class CacheStats:
    """Hit/miss/eviction/expiry counts of one cache (snapshot-friendly)."""

    __slots__ = ("hits", "misses", "evictions", "expirations", "invalidations")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class ContextCache:
    """Thread-safe LRU cache with optional TTL expiry.

    ``max_entries`` bounds memory (least-recently-used eviction);
    ``ttl_seconds`` bounds staleness (entries older than the TTL are
    treated as misses and dropped).  ``clock`` is injectable for tests.
    """

    def __init__(self, max_entries: int = 1024, ttl_seconds: float | None = None,
                 clock=time.monotonic):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None)")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: OrderedDict[tuple, tuple[float, object]] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, key: tuple, default=None):
        """The cached value, refreshing recency; ``default`` on miss."""
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                self.stats.misses += 1
                return default
            stored_at, value = entry
            if (self.ttl_seconds is not None
                    and self._clock() - stored_at > self.ttl_seconds):
                del self._entries[key]
                self.stats.expirations += 1
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: tuple, value) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (self._clock(), value)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self) -> None:
        """Drop every entry (the visible rating graph changed)."""
        with self._lock:
            self._entries.clear()
            self.stats.invalidations += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries
