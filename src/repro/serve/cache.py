"""LRU + TTL cache for assembled prediction contexts.

Neighbourhood sampling is the dominant online cost of a request (BFS over
the rating graph, Python-heavy — the same observation GraphHINGE makes for
metapath neighbourhoods), and under the serving layer's per-request RNG
derivation (:func:`repro.core.task_chunk_rng`) context assembly is a *pure
function* of its key.  That makes assembled contexts safely memoisable:
a cache hit returns bit-identical contexts to a fresh assembly.

Keys are built by :func:`context_cache_key` from the entity frontier
(user, query items, support items), the sampler, the context budgets, and
the graph store's *epoch* — the counter that bumps only on full
invalidations (candidate-pool growth), not on every update.  Ordinary
rating deltas instead evict **fine-grained**: each entry is tagged with
the users/items its assembly actually read, and
:meth:`ContextCache.invalidate_entities` drops exactly the entries whose
tag intersects the changed entities, sparing the rest
(:class:`repro.serve.dataplane.GraphStore` drives this).  A put-time
``guard`` closes the in-flight race: a worker pinned to a pre-update
snapshot re-checks the per-entity version map under the cache lock before
its entry lands, so a stale assembly is dropped instead of cached.

Eviction sweeps are O(touched entries): a reverse per-entity index maps
every tagged entity to the keys carrying it, so ``invalidate_entities``
unions the changed entities' key sets instead of scanning the cache.

:class:`FrontierCache` reuses all of that machinery one level down: it
memoises *sampled frontiers* — the ``(users, items)`` a single BFS call
chose, plus the rng state right after it — keyed by
:func:`frontier_cache_key`, so hot users skip the BFS even when the
request-level context cache misses (different query combination, cache
disabled) while staying bit-identical via rng-state restoration.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

__all__ = [
    "ContextCache",
    "FrontierCache",
    "FrontierBinding",
    "CacheStats",
    "context_cache_key",
    "frontier_cache_key",
]

_MISSING = object()


def context_cache_key(graph_epoch: int, sampler_name: str, user: int,
                      query_items, support_items, context_users: int,
                      context_items: int, reveal_fraction: float,
                      seed: int) -> tuple:
    """Hashable key identifying one request's assembled contexts.

    Everything that influences assembly appears in the key; two requests
    with equal keys are guaranteed (by the pure per-request RNG derivation)
    to assemble identical contexts.  ``graph_epoch`` is the full-
    invalidation counter, **not** the per-update generation — keeping the
    generation out of the key is what lets entries survive updates that
    never touched their entities (staleness against those updates is
    handled by entity tags + the put guard instead).
    """
    return (
        int(graph_epoch),
        str(sampler_name),
        int(user),
        tuple(int(i) for i in query_items),
        tuple(int(i) for i in support_items),
        int(context_users),
        int(context_items),
        float(reveal_fraction),
        int(seed),
    )


class CacheStats:
    """Hit/miss/eviction/invalidation counts of one cache (snapshot-friendly).

    ``invalidations`` counts full clears; ``partial_invalidations``,
    ``entries_evicted``, and ``entries_spared`` describe the fine-grained
    path (per sweep: how many tagged entries intersected the changed
    entities vs. survived), and ``stale_puts`` counts in-flight assemblies
    dropped by the put-time guard.
    """

    __slots__ = ("hits", "misses", "evictions", "expirations", "invalidations",
                 "partial_invalidations", "entries_evicted", "entries_spared",
                 "stale_puts")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0
        self.partial_invalidations = 0
        self.entries_evicted = 0
        self.entries_spared = 0
        self.stale_puts = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def invalidation_precision(self) -> float | None:
        """Fraction of entries spared across fine-grained sweeps.

        Under the old global-bump scheme this is identically 0 (every
        sweep dropped everything); ``None`` until a sweep has seen a
        non-empty cache.
        """
        scanned = self.entries_evicted + self.entries_spared
        if scanned == 0:
            return None
        return self.entries_spared / scanned

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "partial_invalidations": self.partial_invalidations,
            "entries_evicted": self.entries_evicted,
            "entries_spared": self.entries_spared,
            "stale_puts": self.stale_puts,
            "hit_rate": self.hit_rate,
            "invalidation_precision": self.invalidation_precision,
        }


class ContextCache:
    """Thread-safe LRU cache with optional TTL expiry and entity tags.

    ``max_entries`` bounds memory (least-recently-used eviction);
    ``ttl_seconds`` bounds staleness (entries older than the TTL are
    treated as misses and dropped).  ``clock`` is injectable for tests.

    Entries put with ``users``/``items`` tags participate in fine-grained
    invalidation (:meth:`invalidate_entities`); untagged entries are
    conservatively treated as depending on everything and fall in every
    sweep.
    """

    def __init__(self, max_entries: int = 1024, ttl_seconds: float | None = None,
                 clock=time.monotonic):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None)")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: OrderedDict[tuple, tuple[float, object]] = OrderedDict()
        self._tags: dict[tuple, tuple[frozenset, frozenset]] = {}
        # Reverse index entity -> {keys tagged with it}, so an eviction
        # sweep unions the changed entities' key sets instead of scanning
        # every entry's tags (O(touched entries), not O(cache size)).
        # Untagged keys depend on everything and fall in every sweep.
        self._user_index: dict[int, set] = {}
        self._item_index: dict[int, set] = {}
        self._untagged: set = set()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def _link(self, key: tuple, users, items) -> None:
        """Index ``key`` under its tag entities (lock held)."""
        if users is None and items is None:
            self._untagged.add(key)
            return
        tag_users = (frozenset(int(u) for u in users)
                     if users is not None else frozenset())
        tag_items = (frozenset(int(i) for i in items)
                     if items is not None else frozenset())
        self._tags[key] = (tag_users, tag_items)
        for user in tag_users:
            self._user_index.setdefault(user, set()).add(key)
        for item in tag_items:
            self._item_index.setdefault(item, set()).add(key)

    def _unlink(self, key: tuple) -> None:
        """Remove ``key`` from the tag index (lock held)."""
        self._untagged.discard(key)
        tag = self._tags.pop(key, None)
        if tag is None:
            return
        for user in tag[0]:
            keys = self._user_index.get(user)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._user_index[user]
        for item in tag[1]:
            keys = self._item_index.get(item)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._item_index[item]

    def get(self, key: tuple, default=None):
        """The cached value, refreshing recency; ``default`` on miss."""
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                self.stats.misses += 1
                return default
            stored_at, value = entry
            if (self.ttl_seconds is not None
                    and self._clock() - stored_at > self.ttl_seconds):
                del self._entries[key]
                self._unlink(key)
                self.stats.expirations += 1
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: tuple, value, *, users=None, items=None,
            generation: int | None = None, guard=None) -> bool:
        """Insert an entry, optionally tagged with the entities it read.

        ``guard`` is a staleness predicate ``(users, items, generation) ->
        bool`` (the graph store's ``changed_since``), evaluated **under the
        cache lock**: if any tagged entity changed after the assembly's
        pinned ``generation``, the entry is dropped instead of inserted
        (``stats.stale_puts``) and ``False`` is returned.  This closes the
        window where a worker pinned to a pre-update snapshot finishes
        after the update's eviction sweep — the sweep runs strictly after
        the version bump, so whichever of sweep/put enters the lock last
        sees the other's effect.
        """
        with self._lock:
            if guard is not None and guard(users, items, generation or 0):
                self.stats.stale_puts += 1
                return False
            if key in self._entries:
                self._entries.move_to_end(key)
                self._unlink(key)  # re-put may carry different tags
            self._entries[key] = (self._clock(), value)
            self._link(key, users, items)
            while len(self._entries) > self.max_entries:
                evicted, _ = self._entries.popitem(last=False)
                self._unlink(evicted)
                self.stats.evictions += 1
            return True

    def invalidate(self) -> None:
        """Drop every entry (full invalidation: pool growth, rebuild mode)."""
        with self._lock:
            self._entries.clear()
            self._tags.clear()
            self._user_index.clear()
            self._item_index.clear()
            self._untagged.clear()
            self.stats.invalidations += 1

    def invalidate_entities(self, users, items) -> tuple[int, int]:
        """Drop exactly the entries whose tag intersects the changed
        entities; return ``(evicted, spared)``.

        Soundness rests on the tag being a superset of the assembly's
        graph read-set (see :mod:`repro.serve.dataplane`); untagged
        entries are evicted unconditionally.  The reverse per-entity
        index makes each sweep O(touched entries): only the changed
        entities' key sets are unioned, never the whole cache.
        """
        with self._lock:
            doomed = set(self._untagged)
            for user in users:
                doomed.update(self._user_index.get(int(user), ()))
            for item in items:
                doomed.update(self._item_index.get(int(item), ()))
            for key in doomed:
                del self._entries[key]
                self._unlink(key)
            spared = len(self._entries)
            self.stats.partial_invalidations += 1
            self.stats.entries_evicted += len(doomed)
            self.stats.entries_spared += spared
            return len(doomed), spared

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries


def frontier_cache_key(graph_epoch: int, sampler_name: str, user: int,
                       query_items, support_items, context_users: int,
                       context_items: int, seed: int, sample_index: int,
                       chunk_start: int) -> tuple:
    """Hashable key identifying one chunk's sampled frontier.

    Finer-grained than :func:`context_cache_key`: one entry per
    ``(sample, chunk)`` rather than per request, because a frontier is the
    output of a single ``sampler.sample`` call.  The rng driving that call
    is :func:`repro.core.task_chunk_rng` — a pure function of
    ``(seed, user, sample_index, chunk_start)`` — and the chunk's target
    items derive from ``(query_items, support_items, context_items,
    chunk_start)``, so the key pins every sampling input.  The *reveal*
    fraction is deliberately absent: frontiers precede the reveal draw
    (the cached rng state replays it exactly — see :class:`FrontierCache`).
    """
    return (
        int(graph_epoch),
        str(sampler_name),
        int(user),
        tuple(int(i) for i in query_items),
        tuple(int(i) for i in support_items),
        int(context_users),
        int(context_items),
        int(seed),
        int(sample_index),
        int(chunk_start),
    )


class FrontierCache(ContextCache):
    """Memoised BFS frontiers for hot users: repeat traffic skips sampling.

    Entries are ``(users, items, rng_state)`` triples — the two entity
    arrays one ``sampler.sample`` call produced plus the generator state
    *after* that call.  On a hit the caller restores the state onto its
    freshly derived chunk rng and proceeds straight to the reveal draw, so
    a cached frontier yields **bit-identical** contexts to a fresh BFS
    (the reveal consumes exactly the stream suffix it would have seen).

    Sits below the request-level :class:`ContextCache` (which memoises the
    finished contexts): when that cache is disabled, cold, or misses on a
    new query-item combination whose frontier chunks are nonetheless warm,
    this one still removes the BFS.  Same machinery otherwise — LRU + TTL,
    entity tags over the sampled users/items (a superset of the BFS
    adjacency read-set), fine-grained invalidation by the data plane, and
    the put-time staleness guard.
    """


class FrontierBinding:
    """Per-(request, sample) adapter handed to ``assemble_user_chunks``.

    Bridges the serve-layer cache to the core assembly loop without the
    core importing serve: ``load(start)`` returns a cached
    ``(users, items, rng_state)`` or ``None``; ``store(start, ...)``
    inserts one, tagged with the sampled entities and guarded against
    concurrent graph updates.  ``on_hit`` / ``on_miss`` are metric hooks.
    """

    __slots__ = ("cache", "key_factory", "generation", "guard",
                 "on_hit", "on_miss")

    def __init__(self, cache: FrontierCache, key_factory, *,
                 generation: int = 0, guard=None,
                 on_hit=None, on_miss=None):
        self.cache = cache
        self.key_factory = key_factory
        self.generation = generation
        self.guard = guard
        self.on_hit = on_hit
        self.on_miss = on_miss

    def load(self, chunk_start: int):
        entry = self.cache.get(self.key_factory(chunk_start))
        if entry is None:
            if self.on_miss is not None:
                self.on_miss()
            return None
        if self.on_hit is not None:
            self.on_hit()
        return entry

    def store(self, chunk_start: int, users, items, rng_state) -> None:
        self.cache.put(self.key_factory(chunk_start),
                       (users, items, rng_state),
                       users=users, items=items,
                       generation=self.generation, guard=self.guard)
