"""The incremental serving data plane: shared graph state + fine-grained
invalidation.

One :class:`GraphStore` owns the mutable serving state — the visible
:class:`~repro.data.bipartite.RatingGraph`, the candidate pools, and two
monotonic counters — and is safely shared by any number of
:class:`~repro.serve.service.PredictionService` shards (that sharing is
what keeps a sharded deployment bit-identical to a single service: context
sampling draws warm neighbours across the *whole* graph, so every shard
must see the same one).

``apply()`` dedupes a delta batch (last value per pair wins, no-op
restatements dropped), derives the next graph — by default through the
O(deltas) copy-on-write :meth:`RatingGraph.apply_deltas` path instead of a
full rebuild — and publishes a new immutable :class:`GraphSnapshot`.
Subscribed services are then told exactly *which* entities changed, via an
:class:`UpdateResult`, so their caches evict only the entries whose
assembly read a changed user or item.

Two counters with distinct jobs:

* **generation** increments on every applied update.  It keys request
  coalescing (requests admitted under different graphs never share a
  result) and the per-entity version map.
* **epoch** increments only on *full* invalidations — candidate-pool
  growth (uniform padding draws depend on pool contents, so every cached
  assembly is suspect) or ``incremental=False``.  It keys the context
  cache, so entries survive updates that did not touch their entities.

The per-entity version map (:class:`EntityVersions`) records, per user and
per item, the generation at which it last changed.  ``changed_since``
answers "did any of these entities change after generation g?" — the
eviction predicate, and also the cache's put-time guard closing the race
where an in-flight worker pinned to an old snapshot finishes assembling
*after* the update's eviction sweep (see
:meth:`~repro.serve.cache.ContextCache.put`).

Why entity tags are a sound dependency set: the BFS sampler only reads
adjacency of entities it has already chosen (targets and picked
neighbours), ``build_context`` only reads ratings of chosen × chosen
cells, and forced-reveal checks ratings of the target user — so every
graph read during an assembly touches an entity in the final context's
``users``/``items``.  The one read outside that set is uniform padding
from the candidate pools, which is exactly why pool growth forces a full
invalidation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from ..data.bipartite import RatingGraph

__all__ = [
    "GraphSnapshot",
    "EntityVersions",
    "UpdateResult",
    "GraphStore",
    "dedupe_deltas",
]

_EMPTY = np.empty(0, dtype=np.int64)


class GraphSnapshot(NamedTuple):
    """One immutable, atomically-published view of the serving graph state.

    Requests pin the snapshot they were admitted under and execute against
    it, so a concurrent update can never leak into (or fail) an accepted
    request.  Being a ``NamedTuple`` keeps it compatible with the
    positional ``graph_state`` tuple the batcher carries
    (``snapshot[3] == snapshot.generation``).
    """

    graph: RatingGraph
    candidate_users: np.ndarray
    candidate_items: np.ndarray
    generation: int
    epoch: int


@dataclass(frozen=True)
class UpdateResult:
    """What one ``GraphStore.apply`` call did, for subscribers and callers.

    ``applied``/``skipped`` count delta triples (skipped = duplicates
    within the batch plus restatements of the graph's current values);
    ``changed_users``/``changed_items`` are the deduplicated entities the
    applied deltas touched; ``full_invalidation`` means entity-level
    eviction is insufficient (pool growth or incremental mode off) and
    subscribers must drop everything.
    """

    applied: int
    skipped: int
    changed_users: np.ndarray = field(default_factory=lambda: _EMPTY)
    changed_items: np.ndarray = field(default_factory=lambda: _EMPTY)
    full_invalidation: bool = False
    generation: int = 0


def dedupe_deltas(graph: RatingGraph, ratings: np.ndarray) -> np.ndarray:
    """Collapse a delta batch to its effective updates.

    Keeps the last occurrence per ``(user, item)`` (batch order is arrival
    order, so later is fresher) and drops triples whose value the graph
    already holds.
    """
    ratings = np.asarray(ratings, dtype=np.float64).reshape(-1, 3)
    if not ratings.size:
        return ratings
    keys = (ratings[:, 0].astype(np.int64) * graph.num_items
            + ratings[:, 1].astype(np.int64))
    # np.unique on the reversed keys finds each pair's LAST occurrence.
    _, reversed_first = np.unique(keys[::-1], return_index=True)
    keep = np.sort(len(ratings) - 1 - reversed_first)
    deduped = ratings[keep]
    changed = np.array([
        graph.rating(int(row[0]), int(row[1])) != row[2]
        for row in deduped
    ])
    return deduped[changed]


class EntityVersions:
    """Per-entity last-changed generations (the fine-grained version map).

    ``users[u]`` / ``items[i]`` hold the graph generation at which that
    entity's ratings last changed (0 = unchanged since the store was
    built).  ``changed_since`` is the staleness predicate for anything
    tagged with the entities it read and the generation it read them at.

    Writes happen under the owning store's lock; reads are lock-free numpy
    gathers.  The publication order in :meth:`GraphStore.apply` (bump
    versions → publish snapshot → notify subscribers) plus the cache's
    put-time guard makes that race-safe — see ``docs/scaling.md``.
    """

    def __init__(self, num_users: int, num_items: int):
        self.users = np.zeros(num_users, dtype=np.int64)
        self.items = np.zeros(num_items, dtype=np.int64)

    def bump(self, users: np.ndarray, items: np.ndarray, generation: int) -> None:
        """Record that these entities changed at ``generation``."""
        if len(users):
            self.users[np.asarray(users, dtype=np.int64)] = generation
        if len(items):
            self.items[np.asarray(items, dtype=np.int64)] = generation

    def changed_since(self, users, items, generation: int) -> bool:
        """Did any listed entity change after ``generation``?"""
        users = np.asarray(users if users is not None else _EMPTY, dtype=np.int64)
        items = np.asarray(items if items is not None else _EMPTY, dtype=np.int64)
        return bool((users.size and (self.users[users] > generation).any())
                    or (items.size and (self.items[items] > generation).any()))


class GraphStore:
    """Shared, thread-safe owner of the serving graph state.

    ``apply()`` is the single write path; everything else reads the
    atomically-swapped :attr:`state` snapshot.  Subscribers (each
    :class:`~repro.serve.service.PredictionService` built on this store)
    receive every applied update's :class:`UpdateResult` and translate it
    into cache/embedding-store invalidation; with a ``rating_log``
    attached, applied deltas also tee into the :mod:`repro.online`
    fine-tuning loop.

    ``incremental=True`` (default) derives graphs via
    :meth:`RatingGraph.apply_deltas`; ``verify=True`` additionally rebuilds
    from scratch on every update and asserts the two graphs bitwise
    identical (``identical_to``) — the belt-and-braces mode the benchmark
    runs under.
    """

    def __init__(self, graph: RatingGraph, candidate_users: np.ndarray,
                 candidate_items: np.ndarray, *, incremental: bool = True,
                 verify: bool = False, rating_log=None):
        self.incremental = incremental
        self.verify = verify
        self.rating_log = rating_log
        # Warm the flat CSR adjacency views up front: the vectorised
        # sampler gathers frontiers through them on every request, so the
        # one O(edges) build belongs here, not on the first request's
        # latency.  apply() keeps them warm across derivations.
        graph.user_adjacency()
        graph.item_adjacency()
        self.versions = EntityVersions(graph.num_users, graph.num_items)
        self._lock = threading.Lock()
        self._state = GraphSnapshot(
            graph,
            np.asarray(candidate_users, dtype=np.int64),
            np.asarray(candidate_items, dtype=np.int64),
            0,
            0,
        )
        self._listeners: list = []
        self._updates_total = 0
        self._applied_total = 0
        self._skipped_total = 0
        self._partial_invalidations = 0
        self._full_invalidations = 0

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> GraphSnapshot:
        """The current snapshot (assignment is atomic; no lock needed)."""
        return self._state

    @property
    def generation(self) -> int:
        return self._state.generation

    @property
    def epoch(self) -> int:
        return self._state.epoch

    def changed_since(self, users, items, generation: int) -> bool:
        """Staleness predicate over the per-entity version map."""
        return self.versions.changed_since(users, items, generation)

    def stats(self) -> dict:
        """Update/invalidation counters as a JSON-able snapshot."""
        with self._lock:
            return {
                "generation": self._state.generation,
                "epoch": self._state.epoch,
                "incremental": self.incremental,
                "updates_total": self._updates_total,
                "applied_total": self._applied_total,
                "skipped_total": self._skipped_total,
                "partial_invalidations": self._partial_invalidations,
                "full_invalidations": self._full_invalidations,
            }

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def subscribe(self, listener) -> None:
        """Register a callable receiving every apply's :class:`UpdateResult`."""
        with self._lock:
            self._listeners.append(listener)

    def apply(self, ratings: np.ndarray) -> UpdateResult:
        """Dedupe and apply a ``(user, item, rating)`` delta batch.

        Version bumps land strictly before the new snapshot is published,
        and subscribers are notified strictly after — that ordering, plus
        the cache's put-time guard, is what makes fine-grained
        invalidation race-free against in-flight assemblies (see the
        module docstring).  Returns the batch's :class:`UpdateResult`;
        ``applied == 0`` means nothing changed (and nothing was
        invalidated or teed).
        """
        ratings = np.asarray(ratings, dtype=np.float64).reshape(-1, 3)
        with self._lock:
            graph, users_pool, items_pool, generation, epoch = self._state
            applied = dedupe_deltas(graph, ratings)
            skipped = len(ratings) - len(applied)
            self._updates_total += 1
            self._skipped_total += skipped
            if not applied.size:
                result = UpdateResult(applied=0, skipped=skipped,
                                      generation=generation)
                listeners = tuple(self._listeners)
            else:
                changed_users = np.unique(applied[:, 0].astype(np.int64))
                changed_items = np.unique(applied[:, 1].astype(np.int64))
                pool_grew = (
                    np.setdiff1d(changed_users, users_pool).size > 0
                    or np.setdiff1d(changed_items, items_pool).size > 0)
                new_graph = self._derive(graph, applied)
                # Keep the CSR views warm on the publish path: after an
                # incremental derive this is O(deltas) bookkeeping (stale
                # marks carried by apply_deltas), and when the stale
                # fraction crosses the rebuild threshold the O(edges)
                # rebuild lands here instead of on a request.
                new_graph.user_adjacency()
                new_graph.item_adjacency()
                full = pool_grew or not self.incremental
                generation += 1
                # Bump before publishing: a reader that sees the new
                # snapshot is guaranteed to see the new versions too.
                self.versions.bump(changed_users, changed_items, generation)
                if full:
                    epoch += 1
                    self._full_invalidations += 1
                else:
                    self._partial_invalidations += 1
                self._applied_total += len(applied)
                self._state = GraphSnapshot(
                    new_graph,
                    np.union1d(users_pool, changed_users),
                    np.union1d(items_pool, changed_items),
                    generation,
                    epoch,
                )
                result = UpdateResult(
                    applied=len(applied), skipped=skipped,
                    changed_users=changed_users, changed_items=changed_items,
                    full_invalidation=full, generation=generation)
                listeners = tuple(self._listeners)
        for listener in listeners:
            listener(result)
        if result.applied and self.rating_log is not None:
            self.rating_log.append(applied)
        return result

    def _derive(self, graph: RatingGraph, applied: np.ndarray) -> RatingGraph:
        """The next graph: incremental by default, rebuild otherwise —
        with ``verify`` asserting the two paths bitwise identical."""
        if not self.incremental:
            return RatingGraph(np.concatenate([graph.triples(), applied]),
                               graph.num_users, graph.num_items)
        derived = graph.apply_deltas(applied)
        if self.verify:
            rebuilt = RatingGraph(np.concatenate([graph.triples(), applied]),
                                  graph.num_users, graph.num_items)
            if not derived.identical_to(rebuilt):
                raise AssertionError(
                    "incremental apply_deltas diverged from the full rebuild "
                    f"on a {len(applied)}-delta batch")
        return derived
