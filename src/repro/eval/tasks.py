"""Evaluation tasks: per-user support/query splits of the cold quadrant.

For every test user in a cold-start scenario, the user's evaluation ratings
are split into a *support* set (the 10 % of ratings the system is allowed to
see — matching both HIRE's revealed context cells and the meta-learning
baselines' support sets) and a *query* set (the 90 % masked ratings that are
predicted and ranked).  This is the uniform protocol all models are scored
under (§VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.schema import ITEM_COLUMN, USER_COLUMN
from ..data.splits import ColdStartSplit

__all__ = ["EvalTask", "build_eval_tasks"]


@dataclass
class EvalTask:
    """One test user's cold-start episode."""

    user: int
    support: np.ndarray  # (s, 3) triples the model may condition on
    query: np.ndarray    # (q, 3) triples to predict and rank

    def __post_init__(self):
        self.support = np.asarray(self.support, dtype=np.float64).reshape(-1, 3)
        self.query = np.asarray(self.query, dtype=np.float64).reshape(-1, 3)
        if self.query.shape[0] == 0:
            raise ValueError("a task needs at least one query rating")
        for name, triples in (("support", self.support), ("query", self.query)):
            if triples.size and not np.all(triples[:, USER_COLUMN] == self.user):
                raise ValueError(f"{name} triples must all belong to the task user")

    @property
    def query_items(self) -> np.ndarray:
        return self.query[:, ITEM_COLUMN].astype(np.int64)

    @property
    def support_items(self) -> np.ndarray:
        return self.support[:, ITEM_COLUMN].astype(np.int64)

    @property
    def query_ratings(self) -> np.ndarray:
        return self.query[:, 2]


def build_eval_tasks(split: ColdStartSplit, scenario: str,
                     support_fraction: float = 0.1, min_query: int = 5,
                     seed: int = 0, max_tasks: int | None = None) -> list[EvalTask]:
    """Group a scenario's cold-quadrant ratings into per-user tasks.

    Users with fewer than ``min_query`` query ratings after the support
    split are dropped (too few items to rank meaningfully).  ``max_tasks``
    caps the evaluation for fast benchmarking sweeps.
    """
    if not 0.0 <= support_fraction < 1.0:
        raise ValueError("support_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    eval_ratings = split.eval_ratings(scenario)
    tasks: list[EvalTask] = []
    if eval_ratings.size == 0:
        return tasks

    users = eval_ratings[:, USER_COLUMN].astype(np.int64)
    for user in np.unique(users):
        rows = eval_ratings[users == user]
        if len(rows) < 2:
            continue
        perm = rng.permutation(len(rows))
        rows = rows[perm]
        support_count = int(round(support_fraction * len(rows)))
        support_count = min(max(support_count, 1), len(rows) - 1)
        support, query = rows[:support_count], rows[support_count:]
        if len(query) < min_query:
            continue
        tasks.append(EvalTask(user=int(user), support=support, query=query))

    rng.shuffle(tasks)
    if max_tasks is not None:
        tasks = tasks[:max_tasks]
    return tasks
