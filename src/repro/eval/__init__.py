"""``repro.eval`` — metrics, tasks, and the uniform evaluation protocol."""

from .metrics import (
    average_precision_at_k,
    mae,
    mrr_at_k,
    ndcg_at_k,
    precision_at_k,
    rank_metrics,
    rating_metrics,
    recall_at_k,
    relevance_threshold,
    rmse,
)
from .protocol import METRIC_NAMES, ScenarioResult, evaluate_model, evaluate_repeated
from .significance import compare_results, paired_bootstrap
from .tasks import EvalTask, build_eval_tasks
from .timing import TestTimeResult, measure_test_time

__all__ = [
    "precision_at_k",
    "ndcg_at_k",
    "average_precision_at_k",
    "recall_at_k",
    "mrr_at_k",
    "rank_metrics",
    "rating_metrics",
    "mae",
    "rmse",
    "relevance_threshold",
    "EvalTask",
    "build_eval_tasks",
    "ScenarioResult",
    "evaluate_model",
    "evaluate_repeated",
    "METRIC_NAMES",
    "measure_test_time",
    "TestTimeResult",
    "paired_bootstrap",
    "compare_results",
]
