"""Test-time measurement (Fig. 6: total test time per method).

The paper times only the *prediction* phase on the user cold-start scenario
(test time is similar across scenarios).  :func:`measure_test_time` times
the predict loop of an already-fitted model over a task list: one untimed
warmup pass first (so BLAS initialisation, lazy caches, and first-touch
allocations don't pollute the samples), then ``repeats`` timed passes.

The return value is a :class:`TestTimeResult` — a ``float`` equal to the
best pass (the historical scalar contract), carrying the per-repeat
``samples`` plus ``best`` / ``mean`` / ``p50`` as attributes.  Each pass is
also recorded as a ``measure_test_time/repeat`` profiling span (see
:mod:`repro.obs.spans`) when profiling is enabled.
"""

from __future__ import annotations

import statistics
import time

from .. import obs
from .tasks import EvalTask

__all__ = ["TestTimeResult", "measure_test_time"]


class TestTimeResult(float):
    """Best-pass seconds as a float, with the full sample set attached."""

    __test__ = False  # "Test" prefix is domain language, not a pytest class

    samples: tuple[float, ...]

    def __new__(cls, samples: tuple[float, ...]):
        if not samples:
            raise ValueError("TestTimeResult needs at least one sample")
        self = super().__new__(cls, min(samples))
        self.samples = tuple(samples)
        return self

    @property
    def best(self) -> float:
        return min(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def p50(self) -> float:
        return statistics.median(self.samples)

    @property
    def repeats(self) -> int:
        return len(self.samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (f"TestTimeResult(best={self.best:.6f}, mean={self.mean:.6f}, "
                f"p50={self.p50:.6f}, repeats={self.repeats})")


def measure_test_time(model, tasks: list[EvalTask], repeats: int = 1,
                      warmup: bool = True) -> TestTimeResult:
    """Seconds to score all tasks: best of ``repeats`` timed passes.

    Runs one untimed warmup pass first (disable with ``warmup=False`` to
    reproduce the pre-telemetry cold-cache numbers).  The result compares
    equal to the historical scalar return value and additionally exposes
    ``samples`` / ``best`` / ``mean`` / ``p50``.
    """
    if not tasks:
        raise ValueError("no tasks to time")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    with obs.span("measure_test_time"):
        if warmup:
            with obs.span("warmup"):
                for task in tasks:
                    model.predict_task(task)
        samples = []
        for _ in range(repeats):
            with obs.span("repeat"):
                start = time.perf_counter()
                for task in tasks:
                    model.predict_task(task)
                samples.append(time.perf_counter() - start)
    return TestTimeResult(tuple(samples))
