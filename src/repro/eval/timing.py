"""Test-time measurement (Fig. 6: total test time per method).

The paper times only the *prediction* phase on the user cold-start scenario
(test time is similar across scenarios).  :func:`measure_test_time` times
the predict loop of an already-fitted model over a task list.
"""

from __future__ import annotations

import time

from .tasks import EvalTask

__all__ = ["measure_test_time"]


def measure_test_time(model, tasks: list[EvalTask], repeats: int = 1) -> float:
    """Seconds to score all tasks, best of ``repeats`` passes."""
    if not tasks:
        raise ValueError("no tasks to time")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for task in tasks:
            model.predict_task(task)
        best = min(best, time.perf_counter() - start)
    return best
