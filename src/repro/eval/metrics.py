"""Ranking metrics: Precision@k, NDCG@k, MAP@k (paper §VI-A).

The paper's protocol: for each test user, sort the *actual* rating values of
their query items by the *predicted* rating values, take the top ``k``, and
score the resulting ranked list.  Relevance for the binary metrics
(Precision, MAP) is "rating in the top quarter of the scale" — rating ≥ 4 on
a 1-5 scale, ≥ 8 on 1-10 — while NDCG uses the graded rating value as gain.

When a user has fewer than ``k`` query items, the list is truncated to what
exists (standard practice for short candidate lists; noted in
EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "relevance_threshold",
    "precision_at_k",
    "ndcg_at_k",
    "average_precision_at_k",
    "recall_at_k",
    "mrr_at_k",
    "rank_metrics",
    "mae",
    "rmse",
    "rating_metrics",
]


def relevance_threshold(rating_range: tuple[float, float]) -> float:
    """Binary-relevance cut: top quarter of the rating scale.

    (1, 5) → 4.0 (ratings of 4 and 5 are relevant), (1, 10) → 7.75
    (ratings 8-10 are relevant).
    """
    low, high = rating_range
    return low + 0.75 * (high - low)


def _top_k_actuals(predicted: np.ndarray, actual: np.ndarray, k: int) -> np.ndarray:
    """Actual ratings of the k items ranked highest by prediction."""
    predicted = np.asarray(predicted, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if predicted.shape != actual.shape or predicted.ndim != 1:
        raise ValueError("predicted and actual must be 1-D arrays of equal length")
    if len(predicted) == 0:
        raise ValueError("cannot rank an empty list")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    order = np.argsort(-predicted, kind="stable")
    return actual[order[:k]]


def precision_at_k(predicted: np.ndarray, actual: np.ndarray, k: int,
                   threshold: float) -> float:
    """Fraction of the top-k predicted items that are actually relevant."""
    top = _top_k_actuals(predicted, actual, k)
    return float((top >= threshold).mean())


def ndcg_at_k(predicted: np.ndarray, actual: np.ndarray, k: int) -> float:
    """Normalised discounted cumulative gain with graded (rating) gains."""
    top = _top_k_actuals(predicted, actual, k)
    discounts = 1.0 / np.log2(np.arange(2, len(top) + 2))
    dcg = float((top * discounts).sum())
    ideal = np.sort(np.asarray(actual, dtype=np.float64))[::-1][: len(top)]
    idcg = float((ideal * discounts).sum())
    if idcg == 0.0:
        return 0.0
    return dcg / idcg


def average_precision_at_k(predicted: np.ndarray, actual: np.ndarray, k: int,
                           threshold: float) -> float:
    """AP@k: mean of precision-at-each-relevant-hit within the top k."""
    top = _top_k_actuals(predicted, actual, k)
    relevant = top >= threshold
    if not relevant.any():
        return 0.0
    hits = np.cumsum(relevant)
    positions = np.arange(1, len(top) + 1)
    precisions = hits / positions
    denominator = min(int((np.asarray(actual) >= threshold).sum()), len(top))
    return float((precisions * relevant).sum() / denominator)


def recall_at_k(predicted: np.ndarray, actual: np.ndarray, k: int,
                threshold: float) -> float:
    """Fraction of all relevant items captured in the top k."""
    total_relevant = int((np.asarray(actual, dtype=np.float64) >= threshold).sum())
    if total_relevant == 0:
        return 0.0
    top = _top_k_actuals(predicted, actual, k)
    return float((top >= threshold).sum() / total_relevant)


def mrr_at_k(predicted: np.ndarray, actual: np.ndarray, k: int,
             threshold: float) -> float:
    """Reciprocal rank of the first relevant item within the top k."""
    top = _top_k_actuals(predicted, actual, k)
    hits = np.flatnonzero(top >= threshold)
    if hits.size == 0:
        return 0.0
    return 1.0 / (int(hits[0]) + 1)


def mae(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Mean absolute rating-prediction error."""
    predicted = np.asarray(predicted, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if predicted.shape != actual.shape or predicted.size == 0:
        raise ValueError("predicted and actual must be equal-length, non-empty")
    return float(np.abs(predicted - actual).mean())


def rmse(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Root mean squared rating-prediction error."""
    predicted = np.asarray(predicted, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if predicted.shape != actual.shape or predicted.size == 0:
        raise ValueError("predicted and actual must be equal-length, non-empty")
    return float(np.sqrt(((predicted - actual) ** 2).mean()))


def rating_metrics(predicted: np.ndarray, actual: np.ndarray) -> dict[str, float]:
    """Pointwise rating-error metrics (MAE/RMSE) for one user's queries."""
    return {"mae": mae(predicted, actual), "rmse": rmse(predicted, actual)}


def rank_metrics(predicted: np.ndarray, actual: np.ndarray, k: int,
                 rating_range: tuple[float, float]) -> dict[str, float]:
    """All three metrics for one user's ranked list."""
    threshold = relevance_threshold(rating_range)
    return {
        "precision": precision_at_k(predicted, actual, k, threshold),
        "ndcg": ndcg_at_k(predicted, actual, k),
        "map": average_precision_at_k(predicted, actual, k, threshold),
    }
