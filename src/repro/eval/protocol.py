"""Uniform evaluation protocol for all systems (§VI-A, §VI-B).

Every model — HIRE and the baselines — is scored the same way: build the
per-user support/query tasks for a scenario, ``fit`` the model (supports
visible per the paper's protocol), predict each task's query items, and
aggregate Precision / NDCG / MAP at each ``k`` over tasks.  Mean and
standard deviation across repeated runs (fresh seeds) reproduce the
``mean (std)`` cells of Tables III-V.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..data.splits import ColdStartSplit
from .metrics import rank_metrics
from .tasks import EvalTask, build_eval_tasks

__all__ = ["ScenarioResult", "evaluate_model", "evaluate_repeated"]

METRIC_NAMES = ("precision", "ndcg", "map")


@dataclass
class ScenarioResult:
    """Aggregated metrics of one model on one scenario."""

    model_name: str
    scenario: str
    num_tasks: int
    metrics: dict[int, dict[str, float]]          # k -> metric -> mean over tasks
    fit_seconds: float = 0.0
    predict_seconds: float = 0.0
    per_task: dict[int, dict[str, np.ndarray]] = field(default_factory=dict)

    def row(self, k: int) -> dict[str, float]:
        return self.metrics[k]


def evaluate_model(model, split: ColdStartSplit, scenario: str,
                   ks: tuple[int, ...] = (5, 7, 10), support_fraction: float = 0.1,
                   min_query: int = 5, max_tasks: int | None = None,
                   seed: int = 0, tasks: list[EvalTask] | None = None,
                   fit: bool = True) -> ScenarioResult:
    """Fit ``model`` for one scenario and score it over the eval tasks."""
    if tasks is None:
        tasks = build_eval_tasks(split, scenario, support_fraction=support_fraction,
                                 min_query=min_query, seed=seed, max_tasks=max_tasks)
    if not tasks:
        raise ValueError(f"scenario {scenario!r} produced no evaluation tasks")

    fit_seconds = 0.0
    if fit:
        with obs.span("evaluate/fit"):
            start = time.perf_counter()
            model.fit(split, tasks)
            fit_seconds = time.perf_counter() - start

    rating_range = split.dataset.rating_range
    per_task: dict[int, dict[str, list[float]]] = {
        k: {name: [] for name in METRIC_NAMES} for k in ks
    }
    with obs.span("evaluate/predict"):
        start = time.perf_counter()
        for task in tasks:
            scores = np.asarray(model.predict_task(task), dtype=np.float64)
            if scores.shape != (len(task.query_items),):
                raise ValueError(
                    f"{model.name} returned {scores.shape} scores for "
                    f"{len(task.query_items)} query items"
                )
            for k in ks:
                values = rank_metrics(scores, task.query_ratings, k, rating_range)
                for name in METRIC_NAMES:
                    per_task[k][name].append(values[name])
        predict_seconds = time.perf_counter() - start

    metrics = {
        k: {name: float(np.mean(vals)) for name, vals in by_metric.items()}
        for k, by_metric in per_task.items()
    }
    return ScenarioResult(
        model_name=model.name,
        scenario=scenario,
        num_tasks=len(tasks),
        metrics=metrics,
        fit_seconds=fit_seconds,
        predict_seconds=predict_seconds,
        per_task={k: {n: np.asarray(v) for n, v in by.items()} for k, by in per_task.items()},
    )


def evaluate_repeated(model_factory, split: ColdStartSplit, scenario: str,
                      repeats: int = 3, ks: tuple[int, ...] = (5, 7, 10),
                      **kwargs) -> dict[int, dict[str, tuple[float, float]]]:
    """Mean ± std over ``repeats`` independent fits (fresh model per run).

    ``model_factory(seed)`` must return an unfitted model.  The returned
    mapping is ``k -> metric -> (mean, std)`` — the format of the paper's
    table cells.
    """
    runs: list[ScenarioResult] = []
    for repeat in range(repeats):
        model = model_factory(repeat)
        runs.append(evaluate_model(model, split, scenario, ks=ks,
                                   seed=repeat, **kwargs))
    out: dict[int, dict[str, tuple[float, float]]] = {}
    for k in ks:
        out[k] = {}
        for name in METRIC_NAMES:
            values = np.array([run.metrics[k][name] for run in runs])
            out[k][name] = (float(values.mean()), float(values.std()))
    return out
