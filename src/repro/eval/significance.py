"""Paired bootstrap significance testing between two evaluated systems.

The overall tables report means over a modest number of cold-start tasks,
so "A beats B" claims need a significance check.  Both models are scored
on the *same* tasks (the protocol guarantees this when tasks are passed
explicitly), making the paired bootstrap the right tool: resample tasks
with replacement and examine the distribution of the mean difference.
"""

from __future__ import annotations

import numpy as np

from .protocol import ScenarioResult

__all__ = ["paired_bootstrap", "compare_results"]


def paired_bootstrap(values_a: np.ndarray, values_b: np.ndarray,
                     num_resamples: int = 2000, seed: int = 0,
                     confidence: float = 0.95) -> dict:
    """Bootstrap the mean difference of paired per-task metric values.

    Returns ``mean_diff`` (A − B), a two-sided ``p_value`` for the null of
    zero difference, the ``ci`` of the difference at ``confidence``, and
    ``prob_a_better`` — the bootstrap probability that A's mean exceeds
    B's.
    """
    values_a = np.asarray(values_a, dtype=np.float64)
    values_b = np.asarray(values_b, dtype=np.float64)
    if values_a.shape != values_b.shape or values_a.ndim != 1:
        raise ValueError("paired samples must be equal-length 1-D arrays")
    if len(values_a) < 2:
        raise ValueError("need at least two paired tasks")

    rng = np.random.default_rng(seed)
    n = len(values_a)
    diffs = values_a - values_b
    observed = float(diffs.mean())

    indices = rng.integers(0, n, size=(num_resamples, n))
    resampled = diffs[indices].mean(axis=1)

    alpha = 1.0 - confidence
    low, high = np.quantile(resampled, [alpha / 2, 1.0 - alpha / 2])
    # Two-sided p-value by symmetry of the shifted bootstrap distribution.
    shifted = resampled - observed
    p_value = float(np.mean(np.abs(shifted) >= abs(observed)))
    return {
        "mean_diff": observed,
        "p_value": p_value,
        "ci": (float(low), float(high)),
        "prob_a_better": float(np.mean(resampled > 0.0)),
        "num_tasks": n,
    }


def compare_results(result_a: ScenarioResult, result_b: ScenarioResult,
                    metric: str = "ndcg", k: int = 5, **kwargs) -> dict:
    """Significance of A−B from two :class:`ScenarioResult` on shared tasks."""
    if result_a.num_tasks != result_b.num_tasks:
        raise ValueError(
            "results cover different task counts "
            f"({result_a.num_tasks} vs {result_b.num_tasks}); evaluate both "
            "models on the same explicit task list"
        )
    values_a = result_a.per_task[k][metric]
    values_b = result_b.per_task[k][metric]
    out = paired_bootstrap(values_a, values_b, **kwargs)
    out["model_a"] = result_a.model_name
    out["model_b"] = result_b.model_name
    out["metric"] = f"{metric}@{k}"
    return out
