"""HIRE training loop — Algorithm 1 of the paper.

Each step draws a mini-batch of prediction contexts sampled around random
seed pairs from the warm training quadrant, reveals ``p`` of each context's
observed ratings, masks the rest, and minimises the MSE over the masked set
(Eq. 17) with the paper's optimiser stack: LAMB (β=(0.9, 0.999), ε=1e-6)
wrapped in Lookahead (α=0.5, k=6), a flat-then-anneal cosine schedule at
base LR 1e-3, and global gradient-norm clipping at 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass

import time

import numpy as np

from .. import nn, obs
from ..data.bipartite import RatingGraph
from ..data.splits import ColdStartSplit
from .context import PredictionContext
from .model import HIRE
from .sampling import (
    MAX_CONTEXT_RETRIES,
    ContextSampler,
    NeighborhoodSampler,
    sample_training_context,
)

__all__ = ["TrainerConfig", "HIRETrainer"]


@dataclass
class TrainerConfig:
    """Knobs of Algorithm 1 (§V-A, §VI-A)."""

    steps: int = 200
    batch_size: int = 4
    context_users: int = 32
    context_items: int = 32
    reveal_fraction: float = 0.1
    # Optional upper bound for a randomized reveal fraction: each training
    # context draws p ~ U[reveal_fraction, reveal_fraction_high], teaching
    # the model to exploit dense and sparse context ratings alike.  Equal
    # bounds (the default) reproduce the paper's fixed p.
    reveal_fraction_high: float | None = None
    # Run the whole mini-batch through one stacked forward/backward graph
    # (contexts share (n, m), so they batch cleanly).  Same gradients as
    # the per-context loop up to floating-point summation order.
    batched_forward: bool = True
    base_lr: float = 1e-3
    grad_clip: float = 1.0
    lookahead_alpha: float = 0.5
    lookahead_k: int = 6
    flat_fraction: float = 0.7
    seed: int = 0
    # Early stopping on held-out validation contexts (0 disables it).
    early_stopping_patience: int = 0
    validation_contexts: int = 8
    validate_every: int = 10
    # Context-prefetching pipeline (repro.pipeline).  prefetch_workers > 0
    # samples step batches on that many workers ahead of the optimiser;
    # prefetch_buffer bounds how many steps they may run ahead.  The
    # "process" backend trades pickling overhead for true parallelism.
    prefetch_workers: int = 0
    prefetch_buffer: int = 4
    prefetch_backend: str = "thread"
    # Per-step RNG derivation (derive_step_rng(seed, step, slot)): each
    # context is a pure function of the step index instead of one shared
    # advancing stream.  None = auto: on exactly when prefetching is on.
    # Setting it True with prefetch_workers=0 gives the sequential
    # baseline that any pipelined run is bit-identical to.
    per_step_rng: bool | None = None
    # Zero gradient buffers in place between steps instead of dropping
    # them (skips one allocation + backward-pass takeover per parameter
    # per step; bit-identical loss trajectory).
    zero_grads_in_place: bool = False

    def __post_init__(self):
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.early_stopping_patience < 0:
            raise ValueError("early_stopping_patience must be >= 0")
        if self.early_stopping_patience and self.validate_every < 1:
            raise ValueError("validate_every must be >= 1 when early stopping")
        if self.prefetch_workers < 0:
            raise ValueError("prefetch_workers must be >= 0")
        if self.prefetch_buffer < 1:
            raise ValueError("prefetch_buffer must be >= 1")
        if self.prefetch_backend not in ("thread", "process"):
            raise ValueError("prefetch_backend must be 'thread' or 'process'")
        if self.per_step_rng is False and self.prefetch_workers > 0:
            raise ValueError(
                "prefetch_workers > 0 requires per-step RNG derivation; "
                "leave per_step_rng unset (auto) or set it True")

    @property
    def uses_per_step_rng(self) -> bool:
        """Resolved per-step-RNG mode (auto = on when prefetching)."""
        if self.per_step_rng is None:
            return self.prefetch_workers > 0
        return self.per_step_rng


class HIRETrainer:
    """Trains a :class:`HIRE` model on the warm quadrant of a split."""

    def __init__(self, model: HIRE, split: ColdStartSplit,
                 sampler: ContextSampler | None = None,
                 config: TrainerConfig | None = None,
                 observers: list[obs.TrainerObserver] | None = None):
        self.model = model
        self.split = split
        self.sampler = sampler or NeighborhoodSampler()
        self.config = config or TrainerConfig()
        self.rng = np.random.default_rng(self.config.seed)
        # Telemetry is passive: observers receive plain values and never
        # touch model/optimiser/RNG state, so trajectories are identical
        # with or without them.
        self.observers: list[obs.TrainerObserver] = list(observers or [])
        self.last_grad_norm: float = 0.0
        self.last_lr: float = self.config.base_lr
        self._last_step_stats: tuple[int, int, int] = (0, 0, 0)
        # Set for the duration of a pipelined fit(); train_step takes its
        # batches from here instead of sampling inline.
        self._active_pipeline = None
        self._pipeline_step_offset = 0
        # Kept after fit() so callers can read buffer-wait metrics.
        self.last_pipeline = None

        self.train_ratings = split.train_ratings()
        if len(self.train_ratings) == 0:
            raise ValueError("split has no warm training ratings")
        dataset = split.dataset
        self.graph = RatingGraph(self.train_ratings, dataset.num_users, dataset.num_items)

        inner = nn.LAMB(model.parameters(), lr=self.config.base_lr,
                        betas=(0.9, 0.999), eps=1e-6)
        self.optimizer = nn.Lookahead(inner, alpha=self.config.lookahead_alpha,
                                      k=self.config.lookahead_k)
        self.scheduler = nn.FlatThenAnnealLR(self.optimizer, total_steps=self.config.steps,
                                             flat_fraction=self.config.flat_fraction)
        self.loss_history: list[float] = []
        self.validation_history: list[float] = []
        self._validation_set: list[PredictionContext] | None = None
        self._attention_layers = [
            m for m in model.modules()
            if isinstance(m, nn.MultiHeadSelfAttention)
        ]

    # ------------------------------------------------------------------ #
    # Context generation (line 2 / line 4 of Algorithm 1)
    # ------------------------------------------------------------------ #
    def sample_training_context(self, rng: np.random.Generator | None = None
                                ) -> PredictionContext:
        """One context seeded at a random warm (user, item) rating pair.

        ``rng`` defaults to the trainer's stream; passing an explicit
        generator (as :meth:`validation_loss` does) keeps independent
        sampling streams without touching shared trainer state.

        Delegates to :func:`repro.core.sample_training_context`, which
        gives up with a descriptive :class:`RuntimeError` after
        :data:`~repro.core.MAX_CONTEXT_RETRIES` attempts that all produced
        zero query cells.
        """
        cfg = self.config
        if rng is None:
            rng = self.rng
        return sample_training_context(
            self.graph, self.sampler, self.train_ratings, rng,
            context_users=cfg.context_users, context_items=cfg.context_items,
            reveal_fraction=cfg.reveal_fraction,
            reveal_fraction_high=cfg.reveal_fraction_high,
            candidate_users=self.split.train_users,
            candidate_items=self.split.train_items,
            max_retries=MAX_CONTEXT_RETRIES,
        )

    def _sample_step_batch(self, step: int) -> list[PredictionContext]:
        """The mini-batch of step ``step``, sampled inline (no pipeline).

        With per-step RNG each slot draws from its own derived generator —
        the sequential reference that any pipelined run reproduces
        bit-exactly; otherwise the legacy shared stream is advanced.
        """
        cfg = self.config
        if cfg.uses_per_step_rng:
            from ..pipeline import derive_step_rng

            return [
                self.sample_training_context(
                    rng=derive_step_rng(cfg.seed, step, slot))
                for slot in range(cfg.batch_size)
            ]
        return [self.sample_training_context() for _ in range(cfg.batch_size)]

    def build_pipeline(self, metrics=None):
        """A :class:`repro.pipeline.ContextPipeline` mirroring this
        trainer's sampling configuration (not yet started)."""
        from ..pipeline import ContextBatchSource, ContextPipeline

        cfg = self.config
        return ContextPipeline(
            ContextBatchSource.from_trainer(self),
            num_workers=max(cfg.prefetch_workers, 1),
            buffer_depth=cfg.prefetch_buffer,
            backend=cfg.prefetch_backend,
            metrics=metrics,
        )

    # ------------------------------------------------------------------ #
    # Optimisation
    # ------------------------------------------------------------------ #
    def train_step(self) -> float:
        """One mini-batch update; returns the batch MSE loss."""
        cfg = self.config
        if any(layer.capture_attention for layer in self._attention_layers):
            raise RuntimeError(
                "capture_attention is enabled on an attention layer; disable "
                "it during training (it retains per-step attention maps)"
            )
        step = len(self.loss_history)
        with obs.span("train_step"):
            self.optimizer.zero_grad(set_to_zero=cfg.zero_grads_in_place)
            if self._active_pipeline is not None:
                # Workers sampled this batch ahead of time; the span now
                # measures only how long the optimiser waited on the
                # buffer (hit/starvation counters and wait/depth metrics
                # live on the pipeline's registry).
                with obs.span("sample_wait"):
                    contexts = self._active_pipeline.take(
                        step - self._pipeline_step_offset)
            else:
                with obs.span("sample"):
                    contexts = self._sample_step_batch(step)
            with obs.span("forward"):
                if cfg.batched_forward:
                    predicted = self.model.forward_many(contexts)  # (B, n, m)
                    batch_loss = None
                    for index, context in enumerate(contexts):
                        loss = nn.functional.masked_mse_loss(
                            predicted[index], context.ratings, context.query)
                        batch_loss = loss if batch_loss is None else batch_loss + loss
                else:
                    batch_loss = None
                    for context in contexts:
                        loss = nn.functional.masked_mse_loss(
                            self.model(context), context.ratings, context.query)
                        batch_loss = loss if batch_loss is None else batch_loss + loss
                batch_loss = batch_loss * (1.0 / cfg.batch_size)
            value = batch_loss.item()
            if not np.isfinite(value):
                raise RuntimeError(
                    f"training diverged at step {len(self.loss_history)}: "
                    f"loss={value}; lower base_lr or raise grad_clip headroom"
                )
            with obs.span("backward"):
                batch_loss.backward()
            with obs.span("optimizer"):
                self.last_grad_norm = nn.clip_grad_norm(
                    self.optimizer.parameters, cfg.grad_clip)
                self.last_lr = self.optimizer.lr
                self.optimizer.step()
                self.scheduler.step()
        self._last_step_stats = (
            contexts[0].n, contexts[0].m,
            sum(c.num_query() for c in contexts),
        )
        self.loss_history.append(value)
        return value

    def validation_loss(self) -> float:
        """Mean masked-rating MSE over fixed held-out validation contexts.

        The contexts are sampled once (seeded independently of the training
        stream) and reused across calls, so successive values are
        comparable.
        """
        if self._validation_set is None:
            val_rng = np.random.default_rng(self.config.seed + 7919)
            self._validation_set = [
                self.sample_training_context(rng=val_rng)
                for _ in range(self.config.validation_contexts)
            ]
        self.model.eval()
        total = 0.0
        with nn.no_grad():
            for context in self._validation_set:
                predicted = self.model(context)
                loss = nn.functional.masked_mse_loss(
                    predicted, context.ratings, context.query)
                total += loss.item()
        self.model.train()
        return total / len(self._validation_set)

    def add_observer(self, observer: obs.TrainerObserver) -> None:
        """Attach an observer for subsequent :meth:`fit` calls."""
        self.observers.append(observer)

    def fit(self, log_every: int = 0,
            observers: list[obs.TrainerObserver] | None = None,
            pipeline=None) -> list[float]:
        """Run the configured number of steps; returns the loss history.

        With ``early_stopping_patience > 0``, validation loss is checked
        every ``validate_every`` steps; after ``patience`` consecutive
        non-improving checks training stops and the best parameters are
        restored.

        ``log_every > 0`` attaches a :class:`repro.obs.ConsoleSink` at that
        cadence for this call (unless one is already observing);
        ``observers`` adds further per-call observers on top of the
        trainer-level ones.

        ``pipeline`` accepts a pre-built
        :class:`repro.pipeline.ContextPipeline`; with
        ``config.prefetch_workers > 0`` one is built automatically.  Either
        way the pipeline feeds ``train_step`` prefetched context batches
        (bit-identical to inline per-step-RNG sampling) and is closed —
        workers joined, buffer drained — when this call returns, on
        success, early stop, or error.
        """
        cfg = self.config
        active = list(self.observers)
        if observers:
            active.extend(observers)
        if log_every and not any(isinstance(o, obs.ConsoleSink) for o in active):
            active.append(obs.ConsoleSink(log_every=log_every))
        if pipeline is None and cfg.prefetch_workers > 0:
            pipeline = self.build_pipeline()
        if pipeline is not None:
            if not pipeline.started:
                pipeline.start(cfg.steps)
            self._active_pipeline = pipeline
            self._pipeline_step_offset = len(self.loss_history)
            self.last_pipeline = pipeline
        for observer in active:
            observer.on_fit_start(self, cfg)
        best_val = float("inf")
        best_state = None
        stale_checks = 0
        stopped_early = False
        steps_run = 0
        fit_start = time.perf_counter()
        try:
            for step in range(cfg.steps):
                step_start = time.perf_counter()
                loss = self.train_step()
                step_seconds = time.perf_counter() - step_start
                steps_run = step + 1
                if active:
                    n, m, masked = self._last_step_stats
                    event = obs.StepEvent(
                        step=steps_run, total_steps=cfg.steps, loss=loss,
                        grad_norm=self.last_grad_norm, lr=self.last_lr,
                        step_seconds=step_seconds,
                        steps_per_second=1.0 / step_seconds if step_seconds > 0 else 0.0,
                        context_n=n, context_m=m, masked_cells=masked,
                    )
                    for observer in active:
                        observer.on_step(event)
                if cfg.early_stopping_patience and steps_run % cfg.validate_every == 0:
                    with obs.span("validation"):
                        val = self.validation_loss()
                    self.validation_history.append(val)
                    improved = val < best_val - 1e-6
                    if improved:
                        best_val = val
                        best_state = self.model.state_dict()
                        stale_checks = 0
                    else:
                        stale_checks += 1
                    if active:
                        event = obs.ValidationEvent(step=steps_run, loss=val,
                                                    best_loss=best_val,
                                                    improved=improved)
                        for observer in active:
                            observer.on_validation(event)
                    if stale_checks >= cfg.early_stopping_patience:
                        stopped_early = True
                        break
        finally:
            self._active_pipeline = None
            if pipeline is not None:
                pipeline.close()
        wall_seconds = time.perf_counter() - fit_start
        if best_state is not None:
            self.model.load_state_dict(best_state)
        if active:
            summary = obs.FitSummary(
                steps_run=steps_run, total_steps=cfg.steps,
                stopped_early=stopped_early,
                restored_best=best_state is not None,
                final_loss=self.loss_history[-1] if self.loss_history else float("nan"),
                best_validation=best_val if np.isfinite(best_val) else None,
                wall_seconds=wall_seconds,
                steps_per_second=steps_run / wall_seconds if wall_seconds > 0 else 0.0,
            )
            for observer in active:
                observer.on_fit_end(summary)
        return self.loss_history
