"""Heterogeneous Interaction Module (HIM) — §IV-C of the paper.

One HIM stacks three parameter-sharing multi-head self-attention layers:

* **MBU** (Eq. 10-11): attention *between users* — each item column
  ``H[:, j, :]`` is a sequence of ``n`` user tokens; one shared MHSA
  processes all ``m`` columns in parallel.
* **MBI** (Eq. 12-13): attention *between items* — each user row
  ``H[k, :, :]`` is a sequence of ``m`` item tokens.
* **MBA** (Eq. 14-15): attention *between attributes* — each cell
  ``H[k, j, :]`` is reshaped to ``h`` attribute tokens of width ``f``.

The three layers can be disabled individually, which is exactly the Table VI
ablation grid ("wo/ User", "wo/ Item & Attribute", …).

Implementation note: each attention layer is wrapped with a residual
connection and pre-layer-norm.  The paper fixes K = 3 stacked HIMs trained
with LAMB — the standard transformer-block residual structure is the
implementation detail that makes such a stack optimisable, and it preserves
the permutation-equivariance argument of Property 5.1 (layer norm and
residuals act per token).
"""

from __future__ import annotations

import numpy as np

from .. import nn

__all__ = ["HIM"]


class HIM(nn.Module):
    """One heterogeneous interaction block over ``H ∈ R^{n×m×e}``.

    Parameters
    ----------
    num_attributes:
        ``h`` — attribute token count per cell (user attrs + item attrs + 1).
    attr_dim:
        ``f`` — width of each attribute token; ``e = h·f``.
    num_heads:
        Heads of each MHSA layer (the paper uses 8 heads × 16 dims).
    use_user / use_item / use_attr:
        Ablation switches for the MBU / MBI / MBA layers.
    use_residual / use_layer_norm:
        Switches for the residual connections and pre-layer-norm wrapping
        each attention layer — our implementation choices (see DESIGN.md),
        ablated by ``benchmarks/bench_ablation_residual.py``.
    """

    def __init__(self, num_attributes: int, attr_dim: int, num_heads: int,
                 rng: np.random.Generator, use_user: bool = True,
                 use_item: bool = True, use_attr: bool = True,
                 use_residual: bool = True, use_layer_norm: bool = True):
        super().__init__()
        if not (use_user or use_item or use_attr):
            raise ValueError("HIM needs at least one attention layer enabled")
        self.num_attributes = num_attributes
        self.attr_dim = attr_dim
        self.embed_dim = num_attributes * attr_dim
        self.use_user = use_user
        self.use_item = use_item
        self.use_attr = use_attr
        self.use_residual = use_residual
        self.use_layer_norm = use_layer_norm

        if use_user:
            self.user_attention = nn.MultiHeadSelfAttention(self.embed_dim, num_heads, rng)
            if use_layer_norm:
                self.user_norm = nn.LayerNorm(self.embed_dim)
        if use_item:
            self.item_attention = nn.MultiHeadSelfAttention(self.embed_dim, num_heads, rng)
            if use_layer_norm:
                self.item_norm = nn.LayerNorm(self.embed_dim)
        if use_attr:
            attr_heads = min(num_heads, attr_dim)
            while attr_dim % attr_heads != 0:
                attr_heads -= 1
            self.attr_attention = nn.MultiHeadSelfAttention(attr_dim, attr_heads, rng)
            if use_layer_norm:
                self.attr_norm = nn.LayerNorm(attr_dim)

    # ------------------------------------------------------------------ #
    # The three interaction layers
    # ------------------------------------------------------------------ #
    def _wrap(self, attention: nn.Module, norm: nn.Module | None, x: nn.Tensor) -> nn.Tensor:
        """Apply one attention layer with the configured norm/residual."""
        fused = attention(norm(x) if norm is not None else x)
        return (x + fused) if self.use_residual else fused

    def interact_users(self, h: nn.Tensor) -> nn.Tensor:
        """MBU: tokens are the n users, batched over the m item columns.

        Works on ``(..., n, m, e)`` — leading axes (e.g. a context batch)
        ride along as extra MHSA batch dimensions.
        """
        # (..., n, m, e) -> (..., m, n, e): item columns become batch rows.
        transposed = h.swapaxes(-3, -2)
        norm = self.user_norm if self.use_layer_norm else None
        return self._wrap(self.user_attention, norm, transposed).swapaxes(-3, -2)

    def interact_items(self, h: nn.Tensor) -> nn.Tensor:
        """MBI: tokens are the m items, batched over the n user rows."""
        norm = self.item_norm if self.use_layer_norm else None
        return self._wrap(self.item_attention, norm, h)

    def interact_attributes(self, h: nn.Tensor) -> nn.Tensor:
        """MBA: tokens are the h attributes of each (user, item) cell."""
        *lead, n, m, _ = h.shape
        reshaped = h.reshape(*lead, n, m, self.num_attributes, self.attr_dim)
        norm = self.attr_norm if self.use_layer_norm else None
        return self._wrap(self.attr_attention, norm, reshaped).reshape(
            *lead, n, m, self.embed_dim)

    def forward(self, h: nn.Tensor) -> nn.Tensor:
        if h.shape[-1] != self.embed_dim:
            raise ValueError(f"expected last dim {self.embed_dim}, got {h.shape[-1]}")
        if self.use_user:
            h = self.interact_users(h)
        if self.use_item:
            h = self.interact_items(h)
        if self.use_attr:
            h = self.interact_attributes(h)
        return h

    # ------------------------------------------------------------------ #
    # Attention capture (Fig. 9 case study)
    # ------------------------------------------------------------------ #
    def set_capture(self, enabled: bool) -> None:
        for layer in ("user_attention", "item_attention", "attr_attention"):
            if hasattr(self, layer):
                getattr(self, layer).capture_attention = enabled

    def captured_attention(self) -> dict[str, np.ndarray]:
        """Most recent attention weights per enabled layer.

        Keys: ``"user"`` with shape (m, heads, n, n), ``"item"`` with shape
        (n, heads, m, m), ``"attr"`` with shape (n, m, heads, h, h).
        """
        out: dict[str, np.ndarray] = {}
        if self.use_user and self.user_attention.last_attention is not None:
            out["user"] = self.user_attention.last_attention
        if self.use_item and self.item_attention.last_attention is not None:
            out["item"] = self.item_attention.last_attention
        if self.use_attr and self.attr_attention.last_attention is not None:
            out["attr"] = self.attr_attention.last_attention
        return out
