"""Prediction-context samplers (paper §IV-B and the §VI-E ablation).

Given target (possibly cold) users/items and budgets ``n`` users × ``m``
items, a sampler selects the remaining context entities:

* :class:`NeighborhoodSampler` — the paper's strategy: BFS over the rating
  bipartite graph starting from the seed set, taking one-hop neighbour
  entities hop by hop, uniformly subsampling whenever a frontier exceeds the
  remaining budget (Fig. 5 / Example 1).
* :class:`RandomSampler` — uniform over the candidate pools.
* :class:`FeatureSimilaritySampler` — ranks candidates by cosine similarity
  of one-hot attribute vectors against the targets.

All samplers guarantee exactly ``n`` users and ``m`` items (padding from the
candidate pools when the graph is exhausted), with the targets always first.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..data.bipartite import RatingGraph
from ..data.schema import RatingDataset
from .context import PredictionContext, build_context

__all__ = [
    "ContextSampler",
    "NeighborhoodSampler",
    "RandomSampler",
    "FeatureSimilaritySampler",
    "sampler_by_name",
    "sample_training_context",
    "MAX_CONTEXT_RETRIES",
]

# How many seed pairs a training-context draw tries before giving up.
# Exhaustion means every attempt produced a context with zero masked query
# cells — there is nothing to supervise on, so retrying forever would hang.
MAX_CONTEXT_RETRIES = 16

_EMPTY = np.empty(0, dtype=np.int64)


def sample_training_context(graph: RatingGraph, sampler: ContextSampler,
                            train_ratings: np.ndarray,
                            rng: np.random.Generator, *,
                            context_users: int, context_items: int,
                            reveal_fraction: float,
                            reveal_fraction_high: float | None = None,
                            candidate_users: np.ndarray,
                            candidate_items: np.ndarray,
                            max_retries: int = MAX_CONTEXT_RETRIES
                            ) -> PredictionContext:
    """One training context seeded at a random warm (user, item) rating pair.

    This is line 2 / line 4 of Algorithm 1 as a pure function of its inputs
    plus ``rng``: it draws a seed pair from ``train_ratings``, grows the
    context with ``sampler``, and splits the observed cells into
    revealed/query via :func:`~repro.core.context.build_context`.  Because
    every random draw comes from the passed generator, the same generator
    state always yields the same context — which is what lets
    :mod:`repro.pipeline` sample steps on worker threads bit-identically
    to a sequential loop.

    Raises :class:`RuntimeError` after ``max_retries`` attempts that all
    produced zero query cells (e.g. ``reveal_fraction`` so high that every
    observed rating is revealed), naming the retry count and the last seed
    pair tried.

    Tiny graphs degrade instead of looping: when the graph and candidate
    pools cannot supply the requested budgets, the sampler returns every
    entity it can reach and the context is built at that achievable shape
    (with a :class:`RuntimeWarning` naming it).  If *both* axes fall short
    — the context already contains the entire candidate universe, so every
    retry would rebuild the same observed cells — and the reveal fraction
    is deterministic, a zero-query draw is a :class:`RuntimeError`
    immediately rather than after ``max_retries`` identical failures.
    """
    if len(train_ratings) == 0:
        raise ValueError("train_ratings is empty; nothing to sample from")
    last_pair: tuple[int, int] | None = None
    warned_degraded = False
    for attempt in range(max_retries):
        seed_row = train_ratings[rng.integers(len(train_ratings))]
        last_pair = (int(seed_row[0]), int(seed_row[1]))
        users, items = sampler.sample(
            graph,
            target_users=np.array([last_pair[0]]),
            target_items=np.array([last_pair[1]]),
            n=context_users, m=context_items,
            rng=rng,
            candidate_users=candidate_users,
            candidate_items=candidate_items,
        )
        users_short = len(users) < context_users
        items_short = len(items) < context_items
        if (users_short or items_short) and not warned_degraded:
            warned_degraded = True
            warnings.warn(
                f"context budgets ({context_users} users x {context_items} "
                f"items) exceed what the graph and candidate pools can "
                f"supply; degraded to the achievable "
                f"({len(users)}, {len(items)}) shape",
                RuntimeWarning, stacklevel=2)
        reveal = reveal_fraction
        if reveal_fraction_high is not None:
            reveal = rng.uniform(reveal_fraction, reveal_fraction_high)
        context = build_context(graph, users, items, rng,
                                reveal_fraction=reveal)
        if context.num_query() > 0:
            return context
        if (users_short and items_short and reveal_fraction_high is None
                and np.isin(last_pair[0], candidate_users)
                and np.isin(last_pair[1], candidate_items)):
            # Both pools are exhausted, so the context's entity set — and
            # with a fixed reveal fraction, its query-cell *count* — is the
            # same on every retry.  Burning the remaining attempts on a
            # deterministic zero cannot succeed; fail fast instead.
            raise RuntimeError(
                f"zero maskable query cells at the degraded context shape "
                f"({len(users)}, {len(items)}): both candidate pools are "
                f"exhausted, so every retry rebuilds the same observed "
                f"cells (gave up on attempt {attempt + 1} of {max_retries}; "
                f"seed pair: user {last_pair[0]}, item {last_pair[1]}) — "
                f"lower reveal_fraction (currently {reveal_fraction}) or "
                f"grow the graph"
            )
    raise RuntimeError(
        f"could not sample a context with any masked ratings after "
        f"{max_retries} attempts (last seed pair: user {last_pair[0]}, "
        f"item {last_pair[1]}); every sampled context had zero query cells "
        f"— lower reveal_fraction (currently {reveal_fraction}) or enlarge "
        f"the context budgets"
    )


class ContextSampler:
    """Interface: produce the (users, items) of one prediction context."""

    name = "base"

    def sample(self, graph: RatingGraph, target_users: np.ndarray, target_items: np.ndarray,
               n: int, m: int, rng: np.random.Generator,
               candidate_users: np.ndarray, candidate_items: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _prepare_targets(target_users, target_items, n, m):
        users = np.unique(np.asarray(target_users, dtype=np.int64))[:n]
        items = np.unique(np.asarray(target_items, dtype=np.int64))[:m]
        return users, items

    @staticmethod
    def _pad_uniform(selected: np.ndarray, budget: int, pool: np.ndarray,
                     rng: np.random.Generator) -> np.ndarray:
        """Fill ``selected`` up to ``budget`` with uniform picks from ``pool``."""
        if len(selected) >= budget:
            return selected[:budget]
        remaining = np.setdiff1d(pool, selected, assume_unique=False)
        need = budget - len(selected)
        if len(remaining) == 0:
            return selected
        take = min(need, len(remaining))
        extra = rng.choice(remaining, size=take, replace=False)
        return np.concatenate([selected, extra])


class NeighborhoodSampler(ContextSampler):
    """BFS sampler over the user-item bipartite graph (the paper's default).

    Two implementations of the same sampling process:

    * the **vectorised** fast path (default) expands each hop with numpy
      array ops over the graph's flat CSR adjacency views
      (:meth:`RatingGraph.user_adjacency` / ``item_adjacency``) — one
      fancy-indexed gather + ``np.unique`` + boolean-mask filter per hop
      instead of per-entity Python loops;
    * the **loop** reference mode (``vectorized=False``) is the original
      per-entity implementation, kept as the executable specification.

    Both consume the generator identically (``rng.choice`` fires only when
    a frontier pool exceeds the remaining budget, in the same order), so
    they produce **bit-identical** choices from the same rng state —
    property-tested by ``tests/core/test_sampling_equivalence.py``.  The
    shared ``name`` is deliberate: equal outputs mean cache keys built
    from either mode stay interchangeable.
    """

    name = "neighborhood"

    def __init__(self, vectorized: bool = True):
        self.vectorized = vectorized

    def sample(self, graph, target_users, target_items, n, m, rng,
               candidate_users, candidate_items):
        if self.vectorized:
            return self._sample_vectorized(graph, target_users, target_items,
                                           n, m, rng, candidate_users,
                                           candidate_items)
        return self._sample_loop(graph, target_users, target_items, n, m,
                                 rng, candidate_users, candidate_items)

    # -- vectorised fast path ------------------------------------------ #
    def _sample_vectorized(self, graph, target_users, target_items, n, m,
                           rng, candidate_users, candidate_items):
        users, items = self._prepare_targets(target_users, target_items, n, m)
        candidate_users = np.asarray(candidate_users, dtype=np.int64)
        candidate_items = np.asarray(candidate_items, dtype=np.int64)
        user_adjacency = graph.user_adjacency()   # user -> items
        item_adjacency = graph.item_adjacency()   # item -> users
        allowed_users = np.zeros(graph.num_users, dtype=bool)
        allowed_users[candidate_users] = True
        allowed_users[users] = True
        allowed_items = np.zeros(graph.num_items, dtype=bool)
        allowed_items[candidate_items] = True
        allowed_items[items] = True
        chosen_user_mask = np.zeros(graph.num_users, dtype=bool)
        chosen_user_mask[users] = True
        chosen_item_mask = np.zeros(graph.num_items, dtype=bool)
        chosen_item_mask[items] = True
        chosen_users, chosen_items = users, items
        frontier_users, frontier_items = users, items

        while ((len(chosen_users) < n or len(chosen_items) < m)
               and (frontier_users.size or frontier_items.size)):
            next_users = next_items = _EMPTY
            if len(chosen_users) < n:
                # == sorted(set(union of neighbours)) minus chosen/denied.
                pool = np.unique(item_adjacency.gather(frontier_items))
                if pool.size:
                    pool = pool[allowed_users[pool] & ~chosen_user_mask[pool]]
                picked = self._take_array(pool, n - len(chosen_users), rng)
                if picked.size:
                    chosen_users = np.concatenate([chosen_users, picked])
                    chosen_user_mask[picked] = True
                next_users = picked
            if len(chosen_items) < m:
                pool = np.unique(user_adjacency.gather(frontier_users))
                if pool.size:
                    pool = pool[allowed_items[pool] & ~chosen_item_mask[pool]]
                picked = self._take_array(pool, m - len(chosen_items), rng)
                if picked.size:
                    chosen_items = np.concatenate([chosen_items, picked])
                    chosen_item_mask[picked] = True
                next_items = picked
            if not next_users.size and not next_items.size:
                break
            frontier_users = next_users
            frontier_items = next_items

        users_final = self._pad_uniform(chosen_users, n, candidate_users, rng)
        items_final = self._pad_uniform(chosen_items, m, candidate_items, rng)
        return users_final, items_final

    @staticmethod
    def _take_array(pool: np.ndarray, budget: int,
                    rng: np.random.Generator) -> np.ndarray:
        """Array twin of :meth:`_take`: same rng consumption, same order."""
        if pool.size <= budget:
            return pool
        picks = rng.choice(pool.size, size=budget, replace=False)
        return pool[picks]

    # -- loop reference mode ------------------------------------------- #
    def _sample_loop(self, graph, target_users, target_items, n, m, rng,
                     candidate_users, candidate_items):
        users, items = self._prepare_targets(target_users, target_items, n, m)
        chosen_users = list(users)
        chosen_items = list(items)
        user_set = set(chosen_users)
        item_set = set(chosen_items)
        frontier_users = list(users)
        frontier_items = list(items)
        allowed_users = set(np.asarray(candidate_users, dtype=np.int64).tolist()) | user_set
        allowed_items = set(np.asarray(candidate_items, dtype=np.int64).tolist()) | item_set

        # Hop-by-hop expansion until both budgets fill or frontier dries up.
        while (len(chosen_users) < n or len(chosen_items) < m) and (frontier_users or frontier_items):
            next_users: list[int] = []
            next_items: list[int] = []
            # Neighbours of frontier items are users; of frontier users, items.
            if len(chosen_users) < n:
                neighbor_users: set[int] = set()
                for item in frontier_items:
                    neighbor_users.update(
                        int(u) for u in graph.users_of_item(item)
                        if u not in user_set and u in allowed_users
                    )
                picked = self._take(sorted(neighbor_users), n - len(chosen_users), rng)
                chosen_users.extend(picked)
                user_set.update(picked)
                next_users = picked
            if len(chosen_items) < m:
                neighbor_items: set[int] = set()
                for user in frontier_users:
                    neighbor_items.update(
                        int(i) for i in graph.items_of_user(user)
                        if i not in item_set and i in allowed_items
                    )
                picked = self._take(sorted(neighbor_items), m - len(chosen_items), rng)
                chosen_items.extend(picked)
                item_set.update(picked)
                next_items = picked
            if not next_users and not next_items:
                break
            frontier_users = next_users
            frontier_items = next_items

        users_final = self._pad_uniform(np.asarray(chosen_users, dtype=np.int64), n,
                                        np.asarray(candidate_users, dtype=np.int64), rng)
        items_final = self._pad_uniform(np.asarray(chosen_items, dtype=np.int64), m,
                                        np.asarray(candidate_items, dtype=np.int64), rng)
        return users_final, items_final

    @staticmethod
    def _take(pool: list[int], budget: int, rng: np.random.Generator) -> list[int]:
        if len(pool) <= budget:
            return list(pool)
        picks = rng.choice(len(pool), size=budget, replace=False)
        return [pool[p] for p in picks]


class RandomSampler(ContextSampler):
    """Uniform sampler: targets plus random candidates (ablation baseline)."""

    name = "random"

    def sample(self, graph, target_users, target_items, n, m, rng,
               candidate_users, candidate_items):
        users, items = self._prepare_targets(target_users, target_items, n, m)
        users = self._pad_uniform(users, n, np.asarray(candidate_users, dtype=np.int64), rng)
        items = self._pad_uniform(items, m, np.asarray(candidate_items, dtype=np.int64), rng)
        return users, items


class FeatureSimilaritySampler(ContextSampler):
    """Cosine similarity of one-hot attribute vectors (ablation variant).

    Candidates most similar to the targets (in mean one-hot attribute space)
    fill the context.  On integer attribute codes, the cosine of one-hot
    encodings reduces to the fraction of matching attributes, which is what
    we compute directly.
    """

    name = "feature"

    def __init__(self, dataset: RatingDataset):
        self.dataset = dataset

    def sample(self, graph, target_users, target_items, n, m, rng,
               candidate_users, candidate_items):
        users, items = self._prepare_targets(target_users, target_items, n, m)
        users = self._fill_by_similarity(
            users, n, np.asarray(candidate_users, dtype=np.int64),
            self.dataset.user_attributes, rng,
        )
        items = self._fill_by_similarity(
            items, m, np.asarray(candidate_items, dtype=np.int64),
            self.dataset.item_attributes, rng,
        )
        return users, items

    @staticmethod
    def _fill_by_similarity(selected, budget, pool, attributes, rng):
        if len(selected) >= budget:
            return selected[:budget]
        remaining = np.setdiff1d(pool, selected)
        if remaining.size == 0:
            return selected
        if len(selected) == 0:
            order = rng.permutation(len(remaining))
        else:
            target_attrs = attributes[selected]  # (t, h)
            cand_attrs = attributes[remaining]  # (c, h)
            # Fraction of matching attribute codes against any target, averaged.
            matches = (cand_attrs[:, None, :] == target_attrs[None, :, :]).mean(axis=(1, 2))
            # Random tiebreak so equal-similarity candidates are not biased by id.
            order = np.lexsort((rng.random(len(remaining)), -matches))
        need = budget - len(selected)
        return np.concatenate([selected, remaining[order[:need]]])


def sampler_by_name(name: str, dataset: RatingDataset | None = None) -> ContextSampler:
    """Factory for the three sampling strategies of §VI-E."""
    key = name.lower()
    if key == "neighborhood":
        return NeighborhoodSampler()
    if key == "random":
        return RandomSampler()
    if key == "feature":
        if dataset is None:
            raise ValueError("feature sampler needs the dataset for attributes")
        return FeatureSimilaritySampler(dataset)
    raise KeyError(f"unknown sampler {name!r}; choose neighborhood|random|feature")
