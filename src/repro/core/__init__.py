"""``repro.core`` — the paper's contribution: HIRE and its components.

* :mod:`repro.core.sampling` — prediction-context samplers (§IV-B).
* :mod:`repro.core.context` — the n × m context block with rating masks.
* :mod:`repro.core.encoder` — Eq. 6-9 attribute/rating embeddings.
* :mod:`repro.core.him` — the Heterogeneous Interaction Module (§IV-C).
* :mod:`repro.core.model` — HIRE: encoder → K HIMs → decoder.
* :mod:`repro.core.trainer` — Algorithm 1 with LAMB + Lookahead.
* :mod:`repro.core.predictor` — cold-start inference over eval tasks.
"""

from .context import PredictionContext, build_context
from .encoder import ContextEncoder
from .him import HIM
from .model import HIRE, HIREConfig
from .predictor import (
    AssembledChunk,
    HIREPredictor,
    assemble_user_chunks,
    build_serving_graph,
    ensure_targets,
    task_chunk_rng,
)
from .sampling import (
    MAX_CONTEXT_RETRIES,
    ContextSampler,
    FeatureSimilaritySampler,
    NeighborhoodSampler,
    RandomSampler,
    sample_training_context,
    sampler_by_name,
)
from .trainer import HIRETrainer, TrainerConfig

__all__ = [
    "PredictionContext",
    "build_context",
    "ContextEncoder",
    "HIM",
    "HIRE",
    "HIREConfig",
    "HIREPredictor",
    "AssembledChunk",
    "assemble_user_chunks",
    "build_serving_graph",
    "ensure_targets",
    "task_chunk_rng",
    "ContextSampler",
    "NeighborhoodSampler",
    "RandomSampler",
    "FeatureSimilaritySampler",
    "sampler_by_name",
    "sample_training_context",
    "MAX_CONTEXT_RETRIES",
    "HIRETrainer",
    "TrainerConfig",
]
