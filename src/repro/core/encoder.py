"""Context encoder: Eq. 6-9 — attributes and ratings to the tensor ``H``.

Every categorical attribute has its own linear transformation from one-hot
space to an ``f``-dimensional embedding (an :class:`~repro.nn.Embedding`
lookup, which is exactly a linear map applied to a one-hot vector).  Ratings
are discretised to their scale's levels and embedded the same way; masked
ratings contribute a zero vector.  The cell feature is the concatenation

    H[k, j] = [x_{u_k} ‖ x_{i_j} ‖ x_r]   ∈ R^e,  e = (h_u + h_i + 1) · f.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.schema import RatingDataset
from .context import PredictionContext

__all__ = ["ContextEncoder"]


class ContextEncoder(nn.Module):
    """Maps a :class:`PredictionContext` to the initial tensor ``H``.

    Parameters
    ----------
    dataset:
        Supplies attribute cardinalities and the rating scale.
    attr_dim:
        ``f``, the per-attribute embedding width.
    """

    def __init__(self, dataset: RatingDataset, attr_dim: int, rng: np.random.Generator,
                 learned_mask_token: bool = True):
        super().__init__()
        self.attr_dim = attr_dim
        self.num_user_attrs = dataset.num_user_attributes
        self.num_item_attrs = dataset.num_item_attributes
        self.rating_low, self.rating_high = dataset.rating_range
        self.num_rating_levels = int(round(self.rating_high - self.rating_low)) + 1

        self.user_transforms = nn.ModuleList(
            nn.Embedding(card, attr_dim, rng) for card in dataset.user_attribute_cards
        )
        self.item_transforms = nn.ModuleList(
            nn.Embedding(card, attr_dim, rng) for card in dataset.item_attribute_cards
        )
        self.rating_transform = nn.Embedding(self.num_rating_levels, attr_dim, rng)
        # The paper encodes masked ratings as all-zero vectors (Eq. 9); a
        # learned mask token is the standard masked-modeling refinement that
        # lets attention distinguish "hidden" from "small" — switchable so
        # the exact paper encoding remains available (see DESIGN.md).
        self.mask_token = (
            nn.Parameter(nn.init.normal((attr_dim,), rng, std=0.05))
            if learned_mask_token else None
        )

        self._user_attributes = dataset.user_attributes
        self._item_attributes = dataset.item_attributes

    @property
    def num_attributes(self) -> int:
        """``h`` — total attribute slots per cell (user + item + rating)."""
        return self.num_user_attrs + self.num_item_attrs + 1

    @property
    def embed_dim(self) -> int:
        """``e = h · f``, the cell feature width."""
        return self.num_attributes * self.attr_dim

    def encode_users(self, users: np.ndarray) -> nn.Tensor:
        """Eq. 7 — ``x_u`` for each user: (n, h_u · f)."""
        parts = [
            transform(self._user_attributes[users, k])
            for k, transform in enumerate(self.user_transforms)
        ]
        return nn.functional.concatenate(parts, axis=-1)

    def encode_items(self, items: np.ndarray) -> nn.Tensor:
        """Eq. 8 — ``x_i`` for each item: (m, h_i · f)."""
        parts = [
            transform(self._item_attributes[items, k])
            for k, transform in enumerate(self.item_transforms)
        ]
        return nn.functional.concatenate(parts, axis=-1)

    def encode_ratings(self, context: PredictionContext) -> nn.Tensor:
        """Eq. 9 — ``x_r`` per cell: (n, m, f); zeros where masked/unobserved.

        Only the revealed cells are looked up and scattered into the buffer
        (masked cells get the mask token / zeros directly) — at training
        reveal fractions ~0.1 this skips ~90% of the embedding rows the
        dense lookup-then-zero formulation paid for.
        """
        n, m = context.n, context.m
        cells = np.flatnonzero(context.revealed.ravel())
        revealed_ratings = context.ratings.ravel()[cells]
        levels = np.rint(revealed_ratings - self.rating_low).astype(np.int64)
        levels = np.clip(levels, 0, self.num_rating_levels - 1)
        embedded = self.rating_transform(levels)  # (k, f)
        out = nn.functional.scatter_rows(embedded, cells, n * m,
                                         fill=self.mask_token)
        return out.reshape(n, m, self.attr_dim)

    def forward(self, context: PredictionContext) -> nn.Tensor:
        """Eq. 6 — assemble ``H ∈ R^{n×m×e}``."""
        n, m = context.n, context.m
        x_users = self.encode_users(context.users)  # (n, hu*f)
        x_items = self.encode_items(context.items)  # (m, hi*f)
        x_ratings = self.encode_ratings(context)    # (n, m, f)

        # Broadcast user rows across item columns and vice versa — lazy
        # views, materialized once by the concatenate below.
        hu_f = self.num_user_attrs * self.attr_dim
        hi_f = self.num_item_attrs * self.attr_dim
        user_block = x_users.reshape(n, 1, hu_f).broadcast_to(n, m, hu_f)
        item_block = x_items.reshape(1, m, hi_f).broadcast_to(n, m, hi_f)
        return nn.functional.concatenate([user_block, item_block, x_ratings], axis=-1)
