"""Test-time inference for HIRE over cold-start evaluation tasks.

For each :class:`~repro.eval.tasks.EvalTask`, the predictor assembles a
prediction context around the task's cold user: the query items (chunked if
they exceed the item budget), the support items, and neighbourhood-sampled
warm entities.  Support ratings are force-revealed (they are the cold
entity's known interactions), query cells are force-masked, and the
remaining observed cells follow the 10 %-revealed protocol — mirroring how
training contexts are built.

The context-assembly pipeline is exposed as module-level functions
(:func:`build_serving_graph`, :func:`assemble_user_chunks`,
:func:`ensure_targets`, :func:`task_chunk_rng`) so the online serving layer
(:mod:`repro.serve`) scores requests through exactly the same code path as
the offline predictor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.bipartite import RatingGraph
from ..data.splits import ColdStartSplit
from ..eval.tasks import EvalTask
from .context import PredictionContext, build_context
from .model import HIRE
from .sampling import ContextSampler, NeighborhoodSampler

__all__ = [
    "HIREPredictor",
    "AssembledChunk",
    "assemble_user_chunks",
    "build_serving_graph",
    "ensure_targets",
    "task_chunk_rng",
]


def build_serving_graph(split: ColdStartSplit, tasks: list[EvalTask]
                        ) -> tuple[RatingGraph, np.ndarray, np.ndarray]:
    """Visible test-time graph and candidate pools for a set of tasks.

    The tasks' support ratings join the warm training ratings, so the
    neighbourhood sampler can hop through cold entities.  Returns
    ``(graph, candidate_users, candidate_items)`` — the state both
    :class:`HIREPredictor` and :class:`repro.serve.PredictionService`
    assemble contexts against.
    """
    dataset = split.dataset
    visible = [split.train_ratings()]
    visible.extend(task.support for task in tasks if task.support.size)
    graph = RatingGraph(np.concatenate(visible) if visible else np.empty((0, 3)),
                        dataset.num_users, dataset.num_items)
    # Context candidates may include any entity visible at test time.
    candidate_users = np.union1d(split.train_users,
                                 np.array([t.user for t in tasks], dtype=np.int64))
    cold_items = [t.support_items for t in tasks] + [t.query_items for t in tasks]
    candidate_items = np.union1d(
        split.train_items,
        np.unique(np.concatenate(cold_items)) if cold_items else np.empty(0, np.int64),
    )
    return graph, candidate_users, candidate_items


def ensure_targets(users: np.ndarray, items: np.ndarray, target_user: int,
                   target_items: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Samplers put targets first, but defend against budget overflow.

    Vectorised with :func:`np.isin`; equivalent to the original per-element
    membership scans (pinned by ``tests/core/test_predictor.py``).
    """
    users = np.asarray(users, dtype=np.int64)
    items = np.asarray(items, dtype=np.int64)
    target_items = np.asarray(target_items, dtype=np.int64)
    if not np.isin(target_user, users):
        users = np.concatenate([[target_user], users[:-1]])
    missing = target_items[~np.isin(target_items, items)]
    if missing.size:
        head = missing[: len(items)]
        keep = items[~np.isin(items, head)]
        items = np.concatenate([missing, keep])[: len(items)].astype(np.int64)
    return users, items


def task_chunk_rng(seed: int, user: int, sample_index: int,
                   chunk_start: int) -> np.random.Generator:
    """Deterministic RNG for one context chunk of one user's prediction.

    Deriving the generator from ``(seed, user, sample, chunk)`` — instead of
    advancing one shared stream — makes context assembly a pure function of
    its inputs: scores no longer depend on request order, which is what lets
    the serving layer batch, parallelise, and cache assembled contexts while
    staying bit-identical to sequential prediction.
    """
    return np.random.default_rng([int(seed), int(user), int(sample_index),
                                  int(chunk_start)])


@dataclass
class AssembledChunk:
    """One sampled n × m context covering a slice of a user's query items."""

    context: PredictionContext
    user_row: int        # row of the target user inside the context
    cols: np.ndarray     # column of each chunk item, in chunk order
    start: int           # offset of this chunk within the query list

    def __len__(self) -> int:
        return len(self.cols)


def assemble_user_chunks(graph: RatingGraph, sampler: ContextSampler, user: int,
                         query_items: np.ndarray, support_items: np.ndarray, *,
                         context_users: int, context_items: int,
                         reveal_fraction: float, candidate_users: np.ndarray,
                         candidate_items: np.ndarray,
                         rng_factory, frontier=None) -> list[AssembledChunk]:
    """Sample and build the contexts that score ``query_items`` for a user.

    ``rng_factory`` maps a chunk's query offset to the generator driving its
    sampling and reveal draw — :class:`HIREPredictor` passes its shared
    advancing stream, the serving layer passes :func:`task_chunk_rng`.
    Model-free by design: callers run the forward pass (individually, or
    stacked across users via :meth:`HIRE.forward_many`).

    ``frontier`` optionally memoises the sampling step (the serving layer
    passes a :class:`repro.serve.FrontierBinding`): ``load(start)`` may
    return a previously sampled ``(users, items, rng_state)`` for this
    chunk, in which case the BFS is skipped and the cached rng state —
    captured right after the original ``sampler.sample`` call — is
    restored onto the fresh chunk generator, so the subsequent reveal
    draw consumes exactly the stream it would have seen.  Cache hit or
    miss, the resulting contexts are bit-identical.  Only meaningful
    under per-chunk rng derivation (a fresh generator per ``start``);
    callers passing one shared advancing stream must not pass a frontier.
    """
    query_items = np.asarray(query_items, dtype=np.int64)
    support_items = np.asarray(support_items, dtype=np.int64)
    # Reserve a slice of the item budget for support items so the cold
    # user always has revealed interactions inside the context.
    reserve = min(len(support_items), max(context_items // 4, 1))
    chunk_size = max(context_items - reserve, 1)
    chunks: list[AssembledChunk] = []

    for start in range(0, len(query_items), chunk_size):
        chunk = query_items[start:start + chunk_size]
        target_items = np.concatenate([chunk, support_items[:reserve]])
        rng = rng_factory(start)
        cached = frontier.load(start) if frontier is not None else None
        if cached is not None:
            users, items, rng_state = cached
            rng.bit_generator.state = rng_state
        else:
            users, items = sampler.sample(
                graph,
                target_users=np.array([user]),
                target_items=target_items,
                n=context_users, m=context_items,
                rng=rng,
                candidate_users=candidate_users,
                candidate_items=candidate_items,
            )
            if frontier is not None:
                frontier.store(start, users, items, rng.bit_generator.state)
        users, items = ensure_targets(users, items, user, target_items)

        user_row = int(np.flatnonzero(users == user)[0])
        item_pos = {int(item): col for col, item in enumerate(items)}
        # Query ratings are absent from the visible graph by construction
        # (no leakage): their cells are unobserved, hence encoded with a
        # zero rating vector — already masked from the model's view.
        forced_reveal = np.zeros((len(users), len(items)), dtype=bool)
        for item in support_items:
            col = item_pos.get(int(item))
            if col is not None and graph.has_rating(user, int(item)):
                forced_reveal[user_row, col] = True

        context = build_context(
            graph, users, items, rng,
            reveal_fraction=reveal_fraction,
            forced_reveal=forced_reveal,
        )
        cols = np.array([item_pos[int(i)] for i in chunk], dtype=np.int64)
        assert not context.observed[user_row, cols].any(), (
            "query ratings leaked into the visible test-time graph"
        )
        chunks.append(AssembledChunk(context=context, user_row=user_row,
                                     cols=cols, start=start))
    return chunks


class HIREPredictor:
    """Scores evaluation tasks with a trained HIRE model.

    Parameters
    ----------
    model:
        A trained :class:`HIRE`.
    split:
        The cold-start split the model was trained on.
    tasks:
        All evaluation tasks of the scenario; their support ratings join the
        warm training ratings to form the visible test-time graph, so the
        neighbourhood sampler can hop through cold entities.
    per_task_rng:
        With the default ``False``, one RNG stream advances across tasks and
        chunks (the original offline behaviour).  ``True`` derives a fresh
        generator per ``(task, sample, chunk)`` via :func:`task_chunk_rng`,
        making every task's scores independent of evaluation order — the
        mode :class:`repro.serve.PredictionService` reproduces bit-exactly.
    use_inference_engine:
        On by default: chunk forwards run through the graph-free
        :mod:`repro.nn.inference` engine when supported (bitwise identical
        to the Tensor path).  ``False`` is the escape hatch back to the
        ``no_grad`` Tensor forward.
    """

    def __init__(self, model: HIRE, split: ColdStartSplit, tasks: list[EvalTask],
                 sampler: ContextSampler | None = None, context_users: int = 32,
                 context_items: int = 32, reveal_fraction: float = 0.1,
                 num_context_samples: int = 1, seed: int = 0,
                 per_task_rng: bool = False, use_inference_engine: bool = True):
        if num_context_samples < 1:
            raise ValueError("num_context_samples must be >= 1")
        self.model = model
        self.use_inference_engine = use_inference_engine
        self.split = split
        self.sampler = sampler or NeighborhoodSampler()
        self.context_users = context_users
        self.context_items = context_items
        self.reveal_fraction = reveal_fraction
        # Averaging scores over several independently sampled contexts
        # reduces the variance the context lottery introduces (an extension
        # beyond the paper's single-context prediction; see DESIGN.md).
        self.num_context_samples = num_context_samples
        self.seed = seed
        self.per_task_rng = per_task_rng
        self.rng = np.random.default_rng(seed)
        self.graph, self.candidate_users, self.candidate_items = (
            build_serving_graph(split, tasks))

    def predict_task(self, task: EvalTask) -> np.ndarray:
        """Predicted scores for ``task.query_items``, in query order.

        With ``num_context_samples > 1`` the returned scores average the
        predictions from that many independently sampled contexts.
        """
        total = self._predict_once(task, 0)
        for sample_index in range(1, self.num_context_samples):
            total = total + self._predict_once(task, sample_index)
        return total / self.num_context_samples

    def _predict_once(self, task: EvalTask, sample_index: int = 0) -> np.ndarray:
        support_values = {int(i): v for i, v in zip(task.support_items,
                                                    task.support[:, 2])}
        if self.per_task_rng:
            def rng_factory(start, _task=task, _sample=sample_index):
                return task_chunk_rng(self.seed, _task.user, _sample, start)
        else:
            def rng_factory(start):
                return self.rng

        chunks = assemble_user_chunks(
            self.graph, self.sampler, task.user,
            task.query_items, task.support_items,
            context_users=self.context_users,
            context_items=self.context_items,
            reveal_fraction=self.reveal_fraction,
            candidate_users=self.candidate_users,
            candidate_items=self.candidate_items,
            rng_factory=rng_factory,
        )
        scores = np.empty(len(task.query_items), dtype=np.float64)
        for chunk in chunks:
            predicted = self.model.predict(
                chunk.context, use_inference_engine=self.use_inference_engine)
            scores[chunk.start:chunk.start + len(chunk)] = (
                predicted[chunk.user_row, chunk.cols])

        # Items whose rating is in the support set are already known; keep
        # the model honest by never letting supports leak into query scores
        # (they cannot, by construction, but assert the alignment).
        assert not set(int(i) for i in task.query_items) & set(support_values), (
            "query items overlap support items"
        )
        return scores

    def _ensure_targets(self, users, items, target_user, target_items):
        return ensure_targets(users, items, target_user, target_items)
