"""Test-time inference for HIRE over cold-start evaluation tasks.

For each :class:`~repro.eval.tasks.EvalTask`, the predictor assembles a
prediction context around the task's cold user: the query items (chunked if
they exceed the item budget), the support items, and neighbourhood-sampled
warm entities.  Support ratings are force-revealed (they are the cold
entity's known interactions), query cells are force-masked, and the
remaining observed cells follow the 10 %-revealed protocol — mirroring how
training contexts are built.
"""

from __future__ import annotations

import numpy as np

from ..data.bipartite import RatingGraph
from ..data.splits import ColdStartSplit
from ..eval.tasks import EvalTask
from .context import build_context
from .model import HIRE
from .sampling import ContextSampler, NeighborhoodSampler

__all__ = ["HIREPredictor"]


class HIREPredictor:
    """Scores evaluation tasks with a trained HIRE model.

    Parameters
    ----------
    model:
        A trained :class:`HIRE`.
    split:
        The cold-start split the model was trained on.
    tasks:
        All evaluation tasks of the scenario; their support ratings join the
        warm training ratings to form the visible test-time graph, so the
        neighbourhood sampler can hop through cold entities.
    """

    def __init__(self, model: HIRE, split: ColdStartSplit, tasks: list[EvalTask],
                 sampler: ContextSampler | None = None, context_users: int = 32,
                 context_items: int = 32, reveal_fraction: float = 0.1,
                 num_context_samples: int = 1, seed: int = 0):
        if num_context_samples < 1:
            raise ValueError("num_context_samples must be >= 1")
        self.model = model
        self.split = split
        self.sampler = sampler or NeighborhoodSampler()
        self.context_users = context_users
        self.context_items = context_items
        self.reveal_fraction = reveal_fraction
        # Averaging scores over several independently sampled contexts
        # reduces the variance the context lottery introduces (an extension
        # beyond the paper's single-context prediction; see DESIGN.md).
        self.num_context_samples = num_context_samples
        self.rng = np.random.default_rng(seed)

        dataset = split.dataset
        visible = [split.train_ratings()]
        visible.extend(task.support for task in tasks if task.support.size)
        self.graph = RatingGraph(np.concatenate(visible) if visible else np.empty((0, 3)),
                                 dataset.num_users, dataset.num_items)
        # Context candidates may include any entity visible at test time.
        self.candidate_users = np.union1d(split.train_users,
                                          np.array([t.user for t in tasks], dtype=np.int64))
        cold_items = [t.support_items for t in tasks] + [t.query_items for t in tasks]
        self.candidate_items = np.union1d(
            split.train_items,
            np.unique(np.concatenate(cold_items)) if cold_items else np.empty(0, np.int64),
        )

    def predict_task(self, task: EvalTask) -> np.ndarray:
        """Predicted scores for ``task.query_items``, in query order.

        With ``num_context_samples > 1`` the returned scores average the
        predictions from that many independently sampled contexts.
        """
        total = self._predict_once(task)
        for _ in range(self.num_context_samples - 1):
            total = total + self._predict_once(task)
        return total / self.num_context_samples

    def _predict_once(self, task: EvalTask) -> np.ndarray:
        query_items = task.query_items
        support_items = task.support_items
        support_values = {int(i): v for i, v in zip(support_items, task.support[:, 2])}

        # Reserve a slice of the item budget for support items so the cold
        # user always has revealed interactions inside the context.
        reserve = min(len(support_items), max(self.context_items // 4, 1))
        chunk_size = max(self.context_items - reserve, 1)
        scores = np.empty(len(query_items), dtype=np.float64)

        for start in range(0, len(query_items), chunk_size):
            chunk = query_items[start:start + chunk_size]
            target_items = np.concatenate([chunk, support_items[:reserve]])
            users, items = self.sampler.sample(
                self.graph,
                target_users=np.array([task.user]),
                target_items=target_items,
                n=self.context_users, m=self.context_items,
                rng=self.rng,
                candidate_users=self.candidate_users,
                candidate_items=self.candidate_items,
            )
            users, items = self._ensure_targets(users, items, task.user, target_items)

            user_row = int(np.flatnonzero(users == task.user)[0])
            item_pos = {int(item): col for col, item in enumerate(items)}
            # Query ratings are absent from the visible graph by construction
            # (no leakage): their cells are unobserved, hence encoded with a
            # zero rating vector — already masked from the model's view.
            forced_reveal = np.zeros((len(users), len(items)), dtype=bool)
            for item in support_items:
                col = item_pos.get(int(item))
                if col is not None and self.graph.has_rating(task.user, int(item)):
                    forced_reveal[user_row, col] = True

            context = build_context(
                self.graph, users, items, self.rng,
                reveal_fraction=self.reveal_fraction,
                forced_reveal=forced_reveal,
            )
            assert not context.observed[user_row, [item_pos[int(i)] for i in chunk]].any(), (
                "query ratings leaked into the visible test-time graph"
            )
            predicted = self.model.predict(context)
            for offset, item in enumerate(chunk):
                scores[start + offset] = predicted[user_row, item_pos[int(item)]]

        # Items whose rating is in the support set are already known; keep
        # the model honest by never letting supports leak into query scores
        # (they cannot, by construction, but assert the alignment).
        assert not set(int(i) for i in query_items) & set(support_values), (
            "query items overlap support items"
        )
        return scores

    def _ensure_targets(self, users, items, target_user, target_items):
        """Samplers put targets first, but defend against budget overflow."""
        if target_user not in users:
            users = np.concatenate([[target_user], users[:-1]])
        missing = [i for i in target_items if i not in items]
        if missing:
            keep = [i for i in items if i not in missing[: len(items)]]
            items = np.asarray((missing + keep)[: len(items)], dtype=np.int64)
        return users, items
