"""Prediction contexts: the unit of computation for HIRE.

A :class:`PredictionContext` is the sampled block of ``n`` users × ``m``
items together with its rating information, split three ways per cell:

* *revealed* — observed ratings shown to the model (the ``p`` fraction),
* *query*    — observed ratings hidden from the model and predicted
  (the ``1-p`` masked set Q of Eq. 17),
* unobserved — the remaining cells, neither input nor supervised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.bipartite import RatingGraph

__all__ = ["PredictionContext", "build_context"]


@dataclass
class PredictionContext:
    """One n × m context block with revealed/query rating masks."""

    users: np.ndarray          # (n,) user ids
    items: np.ndarray          # (m,) item ids
    ratings: np.ndarray        # (n, m) observed values, 0 where unobserved
    observed: np.ndarray       # (n, m) bool
    revealed: np.ndarray       # (n, m) bool, subset of observed
    query: np.ndarray          # (n, m) bool, observed & ~revealed (selected)

    def __post_init__(self):
        self.users = np.asarray(self.users, dtype=np.int64)
        self.items = np.asarray(self.items, dtype=np.int64)
        n, m = len(self.users), len(self.items)
        for field_name in ("ratings", "observed", "revealed", "query"):
            arr = getattr(self, field_name)
            if arr.shape != (n, m):
                raise ValueError(f"{field_name} must be ({n}, {m}), got {arr.shape}")
        if (self.revealed & ~self.observed).any():
            raise ValueError("revealed cells must be observed")
        if (self.query & ~self.observed).any():
            raise ValueError("query cells must be observed")
        if (self.query & self.revealed).any():
            raise ValueError("query and revealed cells overlap")

    @property
    def n(self) -> int:
        return len(self.users)

    @property
    def m(self) -> int:
        return len(self.items)

    def num_query(self) -> int:
        return int(self.query.sum())

    def permuted(self, user_perm: np.ndarray, item_perm: np.ndarray) -> "PredictionContext":
        """Reorder users/items — used to test Property 5.1 (equivariance)."""
        return PredictionContext(
            users=self.users[user_perm],
            items=self.items[item_perm],
            ratings=self.ratings[np.ix_(user_perm, item_perm)],
            observed=self.observed[np.ix_(user_perm, item_perm)],
            revealed=self.revealed[np.ix_(user_perm, item_perm)],
            query=self.query[np.ix_(user_perm, item_perm)],
        )


def build_context(graph: RatingGraph, users: np.ndarray, items: np.ndarray,
                  rng: np.random.Generator, reveal_fraction: float = 0.1,
                  forced_query: np.ndarray | None = None,
                  forced_reveal: np.ndarray | None = None) -> PredictionContext:
    """Assemble a context from sampled entities and the visible rating graph.

    ``reveal_fraction`` is ``p`` of §V-A: that fraction of observed cells is
    revealed to the model, the rest becomes the masked query set (the paper
    uses p = 0.1, i.e. 90 % masked).  ``forced_query`` marks cells that must
    be masked regardless (the evaluation targets at test time);
    ``forced_reveal`` marks cells that must be visible regardless (the cold
    entity's known support ratings).
    """
    if not 0.0 <= reveal_fraction < 1.0:
        raise ValueError(f"reveal_fraction must be in [0, 1), got {reveal_fraction}")
    users = np.asarray(users, dtype=np.int64)
    items = np.asarray(items, dtype=np.int64)
    ratings, observed = graph.rating_matrix(users, items)

    maskable = observed.copy()
    if forced_query is not None:
        forced_query = np.asarray(forced_query, dtype=bool)
        if forced_query.shape != observed.shape:
            raise ValueError("forced_query shape mismatch")
        if (forced_query & ~observed).any():
            raise ValueError("forced_query marks unobserved cells")
        maskable &= ~forced_query

    revealed = np.zeros_like(observed)
    if forced_reveal is not None:
        forced_reveal = np.asarray(forced_reveal, dtype=bool)
        if forced_reveal.shape != observed.shape:
            raise ValueError("forced_reveal shape mismatch")
        if (forced_reveal & ~observed).any():
            raise ValueError("forced_reveal marks unobserved cells")
        if forced_query is not None and (forced_reveal & forced_query).any():
            raise ValueError("a cell cannot be both forced_query and forced_reveal")
        revealed |= forced_reveal
        maskable &= ~forced_reveal

    flat = np.flatnonzero(maskable)
    reveal_count = int(round(reveal_fraction * observed.sum()))
    reveal_count = min(reveal_count, len(flat))
    if reveal_count > 0:
        picks = rng.choice(flat, size=reveal_count, replace=False)
        revealed.flat[picks] = True

    query = observed & ~revealed
    return PredictionContext(
        users=users, items=items, ratings=ratings,
        observed=observed, revealed=revealed, query=query,
    )
