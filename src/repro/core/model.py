"""The HIRE model: encoder → K HIM blocks → rating decoder (Fig. 3).

The decoder (Eq. 16) maps every cell embedding to a scalar through a linear
head and a sigmoid rescaled by ``α`` (set to the dataset's maximum rating),
yielding the predicted rating matrix ``R̂ ∈ R^{n×m}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..data.schema import RatingDataset
from .context import PredictionContext
from .encoder import ContextEncoder
from .him import HIM

__all__ = ["HIREConfig", "HIRE"]


@dataclass
class HIREConfig:
    """Hyper-parameters of HIRE (§VI-A defaults).

    ``num_blocks`` is K (3 in the paper); ``num_heads`` × ``attr_dim`` match
    the paper's 8 heads of hidden size 16.  ``use_user`` / ``use_item`` /
    ``use_attr`` drive the Table VI ablation grid.
    """

    num_blocks: int = 3
    num_heads: int = 8
    attr_dim: int = 16
    use_user: bool = True
    use_item: bool = True
    use_attr: bool = True
    use_residual: bool = True
    use_layer_norm: bool = True
    learned_mask_token: bool = True
    seed: int = 0

    def __post_init__(self):
        if self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        if self.attr_dim % 1 or self.attr_dim < 1:
            raise ValueError("attr_dim must be a positive integer")

    def ablated(self, **flags) -> "HIREConfig":
        """Copy of this config with ablation flags replaced."""
        values = self.__dict__ | flags
        return HIREConfig(**values)


class HIRE(nn.Module):
    """Heterogeneous Interaction Rating nEtwork."""

    def __init__(self, dataset: RatingDataset, config: HIREConfig | None = None):
        super().__init__()
        self.config = config or HIREConfig()
        rng = np.random.default_rng(self.config.seed)
        self.encoder = ContextEncoder(dataset, self.config.attr_dim, rng,
                                      learned_mask_token=self.config.learned_mask_token)
        self.blocks = nn.ModuleList(
            HIM(
                self.encoder.num_attributes,
                self.config.attr_dim,
                self.config.num_heads,
                rng,
                use_user=self.config.use_user,
                use_item=self.config.use_item,
                use_attr=self.config.use_attr,
                use_residual=self.config.use_residual,
                use_layer_norm=self.config.use_layer_norm,
            )
            for _ in range(self.config.num_blocks)
        )
        self.decoder = nn.Linear(self.encoder.embed_dim, 1, rng)
        # α rescales the sigmoid to the rating range upper bound (Eq. 16).
        self.alpha = float(dataset.rating_range[1])

    def forward(self, context: PredictionContext) -> nn.Tensor:
        """Predicted rating matrix ``R̂`` of shape (n, m)."""
        h = self.encoder(context)
        for block in self.blocks:
            h = block(h)
        logits = self.decoder(h)  # (n, m, 1)
        return logits.reshape(context.n, context.m).sigmoid() * self.alpha

    def forward_many(self, contexts: list[PredictionContext]) -> nn.Tensor:
        """Batched forward over equally-sized contexts: (B, n, m) ratings.

        HIM's attention layers batch over leading axes, so stacking B
        same-shape contexts runs the whole mini-batch in one graph — the
        fast path :class:`~repro.core.trainer.HIRETrainer` uses when
        ``TrainerConfig.batched_forward`` is on.
        """
        if not contexts:
            raise ValueError("forward_many needs at least one context")
        n, m = contexts[0].n, contexts[0].m
        if any(c.n != n or c.m != m for c in contexts):
            raise ValueError("forward_many requires equally-sized contexts")
        h = nn.functional.stack([self.encoder(c) for c in contexts], axis=0)
        for block in self.blocks:
            h = block(h)
        logits = self.decoder(h)  # (B, n, m, 1)
        return logits.reshape(len(contexts), n, m).sigmoid() * self.alpha

    def forward_inference(self, context: PredictionContext) -> np.ndarray:
        """Graph-free engine forward: ``(n, m)`` ratings, zero allocations.

        Runs the compiled :class:`repro.nn.inference.InferencePlan` for this
        model at the context's shape — bitwise identical to the ``no_grad``
        fused Tensor forward.  The result is a view into the plan's reused
        workspace, valid until the next engine call on this thread; copy it
        to retain it.  Callers must check
        :func:`repro.nn.inference.engine_supported` first (reference
        kernels and ``capture_attention`` need the Tensor path).
        """
        return nn.inference.forward_inference(self, context)

    def predict(self, context: PredictionContext,
                use_inference_engine: bool = True) -> np.ndarray:
        """Inference-only forward returning a numpy matrix.

        Uses the graph-free inference engine when supported (bitwise
        identical, allocation-free); ``use_inference_engine=False`` forces
        the Tensor path.
        """
        self.eval()
        if use_inference_engine and nn.inference.engine_supported(self):
            out_data = nn.inference.forward_inference(self, context).copy()
        else:
            with nn.no_grad():
                out_data = self.forward(context).data
        self.train()
        return out_data

    def predict_many(self, contexts: list[PredictionContext],
                     use_inference_engine: bool = True) -> np.ndarray:
        """Inference-only stacked forward: (B, n, m) ratings as numpy.

        Bit-identical per slice to :meth:`predict` on each context (the
        substrate batches over leading axes without reassociating the
        per-slice arithmetic) — the serving layer relies on this to batch
        requests without changing their scores.  Routed through the
        inference engine when supported, like :meth:`predict`.
        """
        self.eval()
        if use_inference_engine and nn.inference.engine_supported(self):
            out_data = nn.inference.forward_inference_many(self, contexts).copy()
        else:
            with nn.no_grad():
                out_data = self.forward_many(contexts).data
        self.train()
        return out_data

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def save(self, path):
        """Checkpoint parameters and config to an ``.npz`` file.

        Returns the real path written (``.npz`` appended when missing).
        """
        from ..nn.serialization import save_module

        return save_module(path, self, metadata={"config": self.config.__dict__,
                                                 "alpha": self.alpha})

    def load(self, path) -> None:
        """Restore parameters from a checkpoint with a matching config."""
        from ..nn.serialization import load_checkpoint

        state, metadata = load_checkpoint(path)
        saved_config = metadata.get("config")
        if saved_config is not None and saved_config != self.config.__dict__:
            raise ValueError(
                f"checkpoint config {saved_config} does not match model "
                f"config {self.config.__dict__}"
            )
        self.load_state_dict(state)

    # ------------------------------------------------------------------ #
    # Attention capture for the Fig. 9 case study
    # ------------------------------------------------------------------ #
    def capture_attention(self, enabled: bool = True) -> None:
        for block in self.blocks:
            block.set_capture(enabled)

    def captured_attention(self) -> list[dict[str, np.ndarray]]:
        """Per-HIM attention weights from the most recent forward pass."""
        return [block.captured_attention() for block in self.blocks]
